"""Mask rule checks (MRC): can the mask shop actually write this?

.. deprecated::
    This module is a thin back-compat shim.  The rule definitions
    (:class:`MRCRules`) and the full localized static-analysis engine
    now live in :mod:`repro.verify.mrc`; new code should call
    :func:`repro.verify.mrc.check_mask_region`, which reports *where*
    each violation is (rule id, rect marker, measured vs. limit) instead
    of the count-only summary returned here.

The shim keeps the original morphological API alive because it is the
right tool for one job that the edge engine is not: :func:`repair_mask`
needs violation *regions* (to fill or trim), not point markers.  The
repair loop therefore still runs on openings/closings, but its
post-condition is now checked by the edge engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import OPCError
from ..geometry import Polygon, Region

# Canonical rule definitions live with the engine; re-exported here so
# `from repro.opc import MRCRules` keeps working.
from ..verify.mrc import MRCRules, MRCViolation, check_mask_region

__all__ = ["MRCRules", "MRCReport", "check_mask", "repair_mask"]


@dataclass
class MRCReport:
    """Violation geometry found by :func:`check_mask` (count-only).

    Legacy shape -- see :class:`repro.verify.mrc.MRCReport` for the
    localized per-violation report.
    """

    width_violations: Region  # repro-lint: ignore[R002] -- geometry, not a length
    space_violations: Region  # repro-lint: ignore[R002] -- geometry, not a length

    @property
    def width_violation_count(self) -> int:
        """Number of distinct too-narrow spots."""
        return len(self.width_violations.outer_polygons())

    @property
    def space_violation_count(self) -> int:
        """Number of distinct too-tight gaps."""
        return len(self.space_violations.outer_polygons())

    @property
    def total(self) -> int:
        """All violations."""
        return self.width_violation_count + self.space_violation_count

    @property
    def is_clean(self) -> bool:
        """True when the mask passes MRC."""
        return self.total == 0


def check_mask(
    mask_geometry: Region, rules: Optional[MRCRules] = None
) -> MRCReport:
    """Run width/space MRC over mask-side geometry.

    Width violations are the parts of features that vanish under an
    opening by ``min_width / 2``; space violations are the gap regions that
    disappear under a closing by ``min_space / 2``.
    """
    from ..verify.drc import check_space, check_width

    rules = (MRCRules() if rules is None else rules).validated()
    merged = mask_geometry.merged()
    if merged.is_empty:
        return MRCReport(Region(), Region())
    return MRCReport(
        width_violations=_drop_dust(
            check_width(merged, rules.min_width_nm), rules.min_area_nm2
        ),
        space_violations=_drop_dust(
            check_space(merged, rules.min_space_nm), rules.min_area_nm2
        ),
    )


def repair_mask(
    mask_geometry: Region,
    rules: Optional[MRCRules] = None,
    max_passes: int = 3,
    strict: bool = False,
) -> Region:
    """Make a mask MRC-clean with minimal, bounded edits.

    Sub-minimum spaces are filled (the sliver of gap becomes chrome) and
    sub-minimum widths trimmed (the sliver of chrome is removed) -- each
    edit displaces geometry by less than the corresponding MRC limit, the
    standard automated fix-up between OPC and fracture.  Passes repeat
    because a fill can create a new narrow neck nearby.

    The post-condition is verified by the edge-based engine
    (:func:`repro.verify.mrc.check_mask_region`): with ``strict=True``
    residual blocking violations raise :class:`OPCError`; otherwise the
    still-dirty geometry is returned as-is for manual review (use
    :func:`repair_mask_residuals` to obtain the leftovers).
    """
    repaired, residual = repair_mask_residuals(
        mask_geometry, rules, max_passes
    )
    if strict and residual:
        heads = "; ".join(
            f"{v.rule_id} at {tuple(v.marker)}" for v in residual[:3]
        )
        more = f" and {len(residual) - 3} more" if len(residual) > 3 else ""
        raise OPCError(
            f"repair_mask left {len(residual)} blocking violation(s) "
            f"after {max_passes} pass(es): {heads}{more}"
        )
    return repaired


def repair_mask_residuals(
    mask_geometry: Region,
    rules: Optional[MRCRules] = None,
    max_passes: int = 3,
) -> Tuple[Region, List[MRCViolation]]:
    """:func:`repair_mask` plus the violations repair could not fix.

    The residual list holds blocking (ERROR severity) markers from the
    edge engine; an empty list is the machine-checked post-condition
    that the repair converged.
    """
    rules = (MRCRules() if rules is None else rules).validated()
    current = mask_geometry.merged()
    for _pass in range(max_passes):
        report = check_mask(current, rules)
        if report.is_clean:
            break
        if not report.space_violations.is_empty:
            current = (current | report.space_violations).merged()
        if not report.width_violations.is_empty:
            current = (current - report.width_violations).merged()
    residual = [
        violation
        for violation in check_mask_region(
            current, rules, with_stats=False
        ).violations
        if violation.severity == "error"
    ]
    return current, residual


def _drop_dust(region: Region, min_area_nm2: int = 4) -> Region:
    """Discard sub-grid artifacts of the morphological difference."""
    keep: List[Polygon] = []
    merged = region.merged()
    for poly in merged.polygons():
        if poly.is_ccw and poly.area >= min_area_nm2:
            keep.append(poly)
    return Region(keep).merged() if keep else Region()
