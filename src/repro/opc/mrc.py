"""Mask rule checks (MRC): can the mask shop actually write this?

Aggressive OPC produces jogs, serifs and assist bars that collide with the
mask writer's limits.  MRC flags features narrower than the writer can
form and gaps tighter than it can resolve -- a gating step between OPC
output and mask tape-out, and one of the 'impact' costs the paper's era
had to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import OPCError
from ..geometry import Polygon, Region


@dataclass(frozen=True)
class MRCRules:
    """Writer limits at wafer scale (4x reticle values divided by 4)."""

    min_width_nm: int = 40
    min_space_nm: int = 40

    def validated(self) -> "MRCRules":
        """Return self, raising :class:`OPCError` on nonsense values."""
        if self.min_width_nm <= 0 or self.min_space_nm <= 0:
            raise OPCError("MRC limits must be positive")
        return self


@dataclass
class MRCReport:
    """Violation geometry found by :func:`check_mask`."""

    width_violations: Region  # repro-lint: ignore[R002] -- geometry, not a length
    space_violations: Region  # repro-lint: ignore[R002] -- geometry, not a length

    @property
    def width_violation_count(self) -> int:
        """Number of distinct too-narrow spots."""
        return len(self.width_violations.outer_polygons())

    @property
    def space_violation_count(self) -> int:
        """Number of distinct too-tight gaps."""
        return len(self.space_violations.outer_polygons())

    @property
    def total(self) -> int:
        """All violations."""
        return self.width_violation_count + self.space_violation_count

    @property
    def is_clean(self) -> bool:
        """True when the mask passes MRC."""
        return self.total == 0


def check_mask(mask_geometry: Region, rules: MRCRules = MRCRules()) -> MRCReport:
    """Run width/space MRC over mask-side geometry.

    Width violations are the parts of features that vanish under an
    opening by ``min_width / 2``; space violations are the gap regions that
    disappear under a closing by ``min_space / 2``.
    """
    from ..verify.drc import check_space, check_width

    rules = rules.validated()
    merged = mask_geometry.merged()
    if merged.is_empty:
        return MRCReport(Region(), Region())
    return MRCReport(
        width_violations=_drop_dust(check_width(merged, rules.min_width_nm)),
        space_violations=_drop_dust(check_space(merged, rules.min_space_nm)),
    )


def repair_mask(
    mask_geometry: Region, rules: MRCRules = MRCRules(), max_passes: int = 3
) -> Region:
    """Make a mask MRC-clean with minimal, bounded edits.

    Sub-minimum spaces are filled (the sliver of gap becomes chrome) and
    sub-minimum widths trimmed (the sliver of chrome is removed) -- each
    edit displaces geometry by less than the corresponding MRC limit, the
    standard automated fix-up between OPC and fracture.  Passes repeat
    because a fill can create a new narrow neck nearby; geometry that is
    still dirty after ``max_passes`` is returned as-is for manual review.
    """
    rules = rules.validated()
    current = mask_geometry.merged()
    for _pass in range(max_passes):
        report = check_mask(current, rules)
        if report.is_clean:
            break
        if not report.space_violations.is_empty:
            current = (current | report.space_violations).merged()
        if not report.width_violations.is_empty:
            current = (current - report.width_violations).merged()
    return current


def _drop_dust(region: Region, min_area: int = 4) -> Region:
    """Discard sub-grid artifacts of the morphological difference."""
    keep: List[Polygon] = []
    merged = region.merged()
    for poly in merged.polygons():
        if poly.is_ccw and poly.area >= min_area:
            keep.append(poly)
    return Region(keep).merged() if keep else Region()
