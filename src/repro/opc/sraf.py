"""Sub-resolution assist feature (scattering bar) insertion.

Isolated lines lack the diffraction-order reinforcement their dense
siblings enjoy, so their process window collapses through focus.  SRAFs --
narrow bars placed next to isolated edges, below the printing threshold --
synthesise a dense-like environment.  Placement is rule-based (the era's
production practice): the measured facing space selects no bar, one
centred bar, or a bar per edge; MRC pruning then removes anything too
close to main features or too short to matter.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

from ..errors import OPCError
from ..geometry import EdgeIndex, Rect, Region

if TYPE_CHECKING:  # pragma: no cover
    from ..litho import LithoSimulator

#: Spaces measured as "nothing within range" are treated as this.
_FAR = 10**6


@dataclass(frozen=True)
class SRAFRecipe:
    """Scattering-bar placement rules (all lengths in nm/dbu)."""

    bar_width_nm: int = 60
    bar_offset_nm: int = 160  # main-feature edge to bar edge
    single_bar_space_nm: int = 520  # >= this: one centred bar fits
    double_bar_space_nm: int = 900  # >= this: a bar per edge
    min_bar_length_nm: int = 200
    end_pullback_nm: int = 60  # bar ends stop short of the edge ends
    mrc_space_nm: int = 100  # minimum bar-to-feature clearance

    def validated(self) -> "SRAFRecipe":
        """Return self, raising :class:`OPCError` on inconsistent rules."""
        if self.bar_width_nm <= 0 or self.bar_offset_nm <= 0:
            raise OPCError("bar width and offset must be positive")
        if self.single_bar_space_nm < self.bar_width_nm + 2 * self.mrc_space_nm:
            raise OPCError("single-bar space cannot fit a bar plus clearances")
        if self.double_bar_space_nm < self.single_bar_space_nm:
            raise OPCError("double-bar space must be >= single-bar space")
        if self.min_bar_length_nm <= 0:
            raise OPCError("minimum bar length must be positive")
        return self


def insert_srafs(features: Region, recipe: SRAFRecipe = SRAFRecipe()) -> Region:
    """Scattering bars for ``features``, already MRC-pruned.

    The returned region contains only the bars; combine with the main
    features via the mask-model ``srafs=`` argument.
    """
    recipe = recipe.validated()
    merged = features.merged()
    if merged.is_empty:
        return Region()
    index = EdgeIndex(merged)
    bars: List[Rect] = []
    for loop in merged.loops:
        n = len(loop)
        for i in range(n):
            start, end = loop[i], loop[(i + 1) % n]
            bars.extend(_bars_for_edge(start, end, index, recipe))
    if not bars:
        return Region()
    candidates = Region.from_rects(bars).merged()
    # MRC pruning: clearance to main features, then drop slivers that the
    # merge may have produced where bars from perpendicular edges meet.
    pruned = candidates - merged.sized(recipe.mrc_space_nm)
    pruned = pruned.opened(max(1, recipe.bar_width_nm // 2 - 1))
    return pruned


def calibrate_sraf_offset(
    simulator: "LithoSimulator",
    line_width_nm: int,
    offsets_nm: Sequence[int],
    dose: float = 1.0,
    defocus_nm: float = 500.0,
    base_recipe: SRAFRecipe = SRAFRecipe(),
) -> Tuple[SRAFRecipe, List[Tuple[int, float, float]]]:
    """Pick the bar offset that best holds an isolated line through focus.

    For each candidate offset, an isolated line with bars is printed in
    focus and at ``defocus_nm``; the winning offset minimises the CD loss
    through focus (the quantity SRAFs exist to protect).  Returns the
    tuned recipe plus the ``(offset, cd_in_focus, cd_defocused)`` table.
    Offsets whose bars print, bridge, or fail MRC are skipped by
    construction (pruning inside :func:`insert_srafs`).
    """
    from ..design.testpatterns import isolated_line
    from ..litho import binary_mask

    if not offsets_nm:
        raise OPCError("need at least one candidate offset")
    pattern = isolated_line(line_width_nm)
    rows: List[Tuple[int, float, float]] = []
    best_offset: int = 0
    best_loss = float("inf")
    for offset in offsets_nm:
        recipe = dataclasses.replace(base_recipe, bar_offset_nm=offset)
        bars = insert_srafs(pattern.region, recipe)
        mask = binary_mask(pattern.region, srafs=bars)
        in_focus = simulator.cd(
            mask, pattern.window, pattern.site("center"), dose=dose
        )
        defocused = simulator.cd(
            mask, pattern.window, pattern.site("center"),
            dose=dose, defocus_nm=defocus_nm,
        )
        if in_focus is None or defocused is None:
            continue
        rows.append((offset, in_focus, defocused))
        loss = abs(in_focus - defocused)
        if loss < best_loss:
            best_loss = loss
            best_offset = offset
    if not rows:
        raise OPCError("no candidate offset printed the line at both conditions")
    return dataclasses.replace(base_recipe, bar_offset_nm=best_offset), rows


def _bars_for_edge(start, end, index: EdgeIndex, recipe: SRAFRecipe) -> List[Rect]:
    """Candidate bars for one boundary edge (interior-left orientation)."""
    ex, ey = end[0] - start[0], end[1] - start[1]
    length = abs(ex) + abs(ey)
    if length < recipe.min_bar_length_nm + 2 * recipe.end_pullback_nm:
        return []
    dx = (ex > 0) - (ex < 0)
    dy = (ey > 0) - (ey < 0)
    normal = (dy, -dx)  # outward
    mid = ((start[0] + end[0]) // 2, (start[1] + end[1]) // 2)
    space = index.ray_distance(mid, normal, _FAR)
    if space is None:
        space = _FAR
    if space < recipe.single_bar_space_nm:
        return []
    if space < recipe.double_bar_space_nm:
        # One centred bar, shared with (and deduplicated against) the
        # facing edge's identical candidate.
        offset = (space - recipe.bar_width_nm) // 2
    else:
        offset = recipe.bar_offset_nm
    return [_bar_rect(start, end, normal, offset, recipe)]


def _bar_rect(start, end, normal, offset: int, recipe: SRAFRecipe) -> Rect:
    """The bar rect parallel to edge ``start->end`` at ``offset`` outward."""
    pull = recipe.end_pullback_nm
    nx, ny = normal
    if nx:  # vertical edge, horizontal offset
        x_near = start[0] + nx * offset
        x_far = x_near + nx * recipe.bar_width_nm
        y_lo, y_hi = sorted((start[1], end[1]))
        return Rect.from_corners((x_near, y_lo + pull), (x_far, y_hi - pull))
    y_near = start[1] + ny * offset
    y_far = y_near + ny * recipe.bar_width_nm
    x_lo, x_hi = sorted((start[0], end[0]))
    return Rect.from_corners((x_lo + pull, y_near), (x_hi - pull, y_far))
