"""Hierarchical model-based OPC: correct each unique context once.

Flat OPC pays for every placement; the industry's answer to the hierarchy
problem was context-aware reuse -- placements of a cell whose optical
neighbourhood matches share one corrected variant.  This module groups a
design's placements by exact context signature (the same signature the
hierarchy-impact analysis computes), corrects one representative per
group in its context, and assembles the full corrected layer from the
variants.

For regular designs this divides OPC compute by the average placement
count per context; for irregular designs it degrades gracefully to flat
cost.  The ``hier.context_hits`` / ``hier.context_misses`` counters are
the hierarchy-breakage story as live metrics: a hit is a placement served
from an already-corrected variant, a miss is a variant that had to be
corrected from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..analysis.hierarchy import _context_signature, _expanded_placements
from ..errors import OPCError
from ..geometry import GridIndex, Region
from ..layout import Cell, Layer
from ..litho import LithoSimulator
from ..obs import count as _obs_count, span as _obs_span
from .model_opc import ModelOPCRecipe, model_opc


@dataclass
class HierarchicalOPCResult:
    """Outcome of a hierarchical correction run."""

    corrected: Region  # the flat corrected layer
    placements: int
    variants_corrected: int
    runtime_s: float
    per_cell_variants: Dict[str, int] = field(default_factory=dict)

    @property
    def reuse_factor(self) -> float:
        """Placements served per correction (1.0 = no reuse)."""
        if self.variants_corrected == 0:
            return 1.0
        return self.placements / self.variants_corrected


def hierarchical_model_opc(
    top: Cell,
    layer: Layer,
    simulator: LithoSimulator,
    dose: float = 1.0,
    interaction_radius_nm: int = 600,
    recipe: ModelOPCRecipe = ModelOPCRecipe(),
) -> HierarchicalOPCResult:
    """Correct ``top``'s ``layer`` by unique (cell, context) variants.

    Placements are grouped by exact optical-context signature within
    ``interaction_radius_nm``; one representative per group is corrected
    (in its real context) and the result reused for every placement in the
    group.  Top-level shapes (outside any placement) are corrected flat.
    """
    if interaction_radius_nm <= 0:
        raise OPCError("interaction radius must be positive")
    with _obs_span(
        "opc.hierarchical", cell=top.name, layer=str(layer)
    ) as hier_span:
        placements = _expanded_placements(top)

        # Index every placement's flat geometry for context queries, exactly
        # as the hierarchy-impact analysis does.
        index: GridIndex = GridIndex(cell_size=5000)
        local_cache: Dict[str, Region] = {}
        placed_regions: List[Region] = []
        for pid, (cell, transform) in enumerate(placements):
            local = local_cache.get(cell.name)
            if local is None:
                _obs_count("hier.cell_cache_misses")
                local = cell.flat_region(layer).merged()
                local_cache[cell.name] = local
            else:
                _obs_count("hier.cell_cache_hits")
            placed = local.transformed(transform)
            placed_regions.append(placed)
            box = placed.bbox()
            if box is not None:
                index.insert(box, (pid, placed.loops))
        own = top.region(layer)
        if own.num_loops:
            box = own.bbox()
            if box is not None:
                index.insert(box, (-1, own.loops))

        # Group placements by (cell, context signature).
        groups: Dict[Tuple[str, int], List[int]] = {}
        for pid, (cell, transform) in enumerate(placements):
            local = local_cache[cell.name]
            if local.is_empty:
                continue
            signature = _context_signature(
                pid, cell, transform, local, index, interaction_radius_nm
            )
            groups.setdefault((cell.name, signature), []).append(pid)

        # Correct one representative per group, in its local frame with its
        # real context frozen around it.
        ambit = simulator.config.ambit_nm
        corrected = Region()
        variants = 0
        per_cell: Dict[str, int] = {}
        for (cell_name, _signature), members in groups.items():
            variants += 1
            per_cell[cell_name] = per_cell.get(cell_name, 0) + 1
            _obs_count("hier.context_misses")
            _obs_count("hier.context_hits", len(members) - 1)
            rep = members[0]
            cell, transform = placements[rep]
            local = local_cache[cell_name]
            local_box = local.bbox()
            context_box = transform.apply_rect(local_box).expanded(
                interaction_radius_nm + ambit
            )
            context = Region()
            for _bbox, (other_pid, loops) in index.query(context_box):
                if other_pid == rep:
                    continue
                for loop in loops:
                    context._add(loop)
            context = (context & Region(context_box)).merged()
            world_target = placed_regions[rep] | context
            window = transform.apply_rect(local_box)
            with _obs_span(
                "opc.variant", cell=cell_name, placements=len(members)
            ):
                result = model_opc(
                    world_target, simulator, window, recipe, dose=dose
                )
            # Keep the variant's own corrected geometry: allow the correction
            # excursion beyond the cell bbox, but exclude the context copies
            # (each context cell gets its own variant).
            clip = Region(window.expanded(recipe.max_total_move_nm))
            variant_world = result.corrected & clip
            if not context.is_empty:
                variant_world = variant_world - context.sized(
                    recipe.max_total_move_nm + 1
                )
            variant_local = variant_world.transformed(transform.inverse())
            for pid in members:
                _cell, place = placements[pid]
                corrected._add(variant_local.transformed(place))

        # Top-level loose shapes are corrected flat against their
        # surroundings.
        if own.num_loops:
            own_box = own.bbox()
            context = Region()
            for _bbox, (other_pid, loops) in index.query(
                own_box.expanded(interaction_radius_nm + ambit)
            ):
                if other_pid == -1:
                    continue
                for loop in loops:
                    context._add(loop)
            with _obs_span("opc.variant", cell=top.name, placements=1):
                result = model_opc(
                    (own | context).merged(), simulator, own_box, recipe,
                    dose=dose,
                )
            corrected._add(result.corrected & Region(own_box))

        hier_span.set(
            placements=len(placements),
            variants_corrected=variants,
        )

    return HierarchicalOPCResult(
        corrected=corrected.merged(),
        placements=len(placements),
        variants_corrected=variants,
        runtime_s=hier_span.duration_s,
        per_cell_variants=per_cell,
    )
