"""Row-based standard-cell placement.

Cells go into abutted rows; alternate rows are flipped about x so power
rails are shared, exactly like a real standard-cell fabric.  The placer is
deterministic given its input order.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import DesignError
from ..geometry import Transform
from ..layout import Cell


def place_rows(
    name: str,
    rows: Sequence[Sequence[Cell]],
    flip_alternate_rows: bool = True,
) -> Cell:
    """Place ``rows`` of cells into a new parent cell.

    Every cell in a row is abutted left-to-right at y = row * height; all
    cells must share one height.  Odd rows are mirrored about x (sharing
    rails with the row below) when ``flip_alternate_rows`` is set.
    """
    if not rows or not any(rows):
        raise DesignError("placement needs at least one cell")
    heights = {
        cell.bbox(recursive=False).height for row in rows for cell in row
    }
    if len(heights) != 1:
        raise DesignError(f"cells must share one height, got {sorted(heights)}")
    height = heights.pop()
    top = Cell(name)
    for row_index, row in enumerate(rows):
        x = 0
        flipped = flip_alternate_rows and row_index % 2 == 1
        y = (row_index + 1) * height if flipped else row_index * height
        for cell in row:
            top.place(
                cell,
                Transform(dx=x, dy=y, mirror_x=flipped),
            )
            x += cell.bbox(recursive=False).width
    return top


def fill_row(cells: Sequence[Cell], row_width: int, rng) -> List[Cell]:
    """Randomly pick cells (with replacement) until ``row_width`` is filled.

    ``rng`` is a seeded :class:`random.Random`-compatible generator; the
    result is deterministic for a given seed and cell list.
    """
    if row_width <= 0:
        raise DesignError(f"row width must be positive, got {row_width}")
    if not cells:
        raise DesignError("need a non-empty cell list")
    widths = [cell.bbox(recursive=False).width for cell in cells]
    narrowest = min(widths)
    row: List[Cell] = []
    used = 0
    while used + narrowest <= row_width:
        pick = rng.randrange(len(cells))
        if used + widths[pick] > row_width:
            continue
        row.append(cells[pick])
        used += widths[pick]
    return row
