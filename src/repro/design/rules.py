"""Design rules for the synthetic process nodes.

Three generations bracket the paper's era: 250 nm (pre-OPC comfort zone),
180 nm (rule-based OPC adoption) and 130 nm (model-based OPC required).
Values follow public-roadmap proportions; they are self-consistent rather
than copied from any proprietary deck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import DesignError
from ..layout import ACTIVE, CONTACT, METAL1, METAL2, POLY, VIA1
from ..verify.drc import DRCRule, enclosure_rule, space_rule, width_rule


@dataclass(frozen=True)
class DesignRules:
    """Geometric design rules of one process node (all nm/dbu)."""

    name: str
    # Front end
    poly_width: int  # drawn gate length
    poly_space: int
    gate_extension: int  # poly past active
    active_width: int
    active_space: int
    active_extension: int  # active past gate (S/D landing)
    # Contacts / vias
    contact_size: int
    contact_space: int
    contact_to_gate: int
    poly_enclosure_of_contact: int
    active_enclosure_of_contact: int
    metal1_enclosure_of_contact: int
    # Back end
    metal1_width: int
    metal1_space: int
    via1_size: int
    metal1_enclosure_of_via1: int
    metal2_width: int
    metal2_space: int
    # Floorplan
    cell_height: int
    rail_width: int
    nwell_overlap_of_active: int

    def __post_init__(self) -> None:
        if min(
            self.poly_width,
            self.poly_space,
            self.active_width,
            self.contact_size,
            self.metal1_width,
            self.metal2_width,
            self.cell_height,
        ) <= 0:
            raise DesignError(f"rule set {self.name!r} has non-positive rules")

    @property
    def poly_pitch(self) -> int:
        """Contacted gate pitch (gate + contact landing between gates)."""
        return (
            self.poly_width
            + 2 * self.contact_to_gate
            + self.contact_size
            + 2 * 0  # symmetric landing
        )

    @property
    def metal1_pitch(self) -> int:
        """Minimum metal1 line pitch."""
        return self.metal1_width + self.metal1_space

    @property
    def metal2_pitch(self) -> int:
        """Minimum metal2 line pitch."""
        return self.metal2_width + self.metal2_space

    def scaled(self, factor: float, name: str) -> "DesignRules":
        """A uniformly scaled rule set (used by shrink studies)."""

        def s(v: int) -> int:
            return max(1, int(round(v * factor)))

        return DesignRules(
            name=name,
            poly_width=s(self.poly_width),
            poly_space=s(self.poly_space),
            gate_extension=s(self.gate_extension),
            active_width=s(self.active_width),
            active_space=s(self.active_space),
            active_extension=s(self.active_extension),
            contact_size=s(self.contact_size),
            contact_space=s(self.contact_space),
            contact_to_gate=s(self.contact_to_gate),
            poly_enclosure_of_contact=s(self.poly_enclosure_of_contact),
            active_enclosure_of_contact=s(self.active_enclosure_of_contact),
            metal1_enclosure_of_contact=s(self.metal1_enclosure_of_contact),
            metal1_width=s(self.metal1_width),
            metal1_space=s(self.metal1_space),
            via1_size=s(self.via1_size),
            metal1_enclosure_of_via1=s(self.metal1_enclosure_of_via1),
            metal2_width=s(self.metal2_width),
            metal2_space=s(self.metal2_space),
            cell_height=s(self.cell_height),
            rail_width=s(self.rail_width),
            nwell_overlap_of_active=s(self.nwell_overlap_of_active),
        )


def node_250nm() -> DesignRules:
    """The pre-OPC generation: k1 comfortable, layouts print as drawn."""
    return DesignRules(
        name="250nm",
        poly_width=250,
        poly_space=330,
        gate_extension=200,
        active_width=400,
        active_space=400,
        active_extension=620,
        contact_size=280,
        contact_space=340,
        contact_to_gate=200,
        poly_enclosure_of_contact=120,
        active_enclosure_of_contact=120,
        metal1_enclosure_of_contact=120,
        metal1_width=320,
        metal1_space=320,
        via1_size=280,
        metal1_enclosure_of_via1=120,
        metal2_width=360,
        metal2_space=360,
        cell_height=8000,
        rail_width=640,
        nwell_overlap_of_active=600,
    )


def node_180nm() -> DesignRules:
    """The OPC-adoption node the paper targets (KrF, k1 ~ 0.49)."""
    return DesignRules(
        name="180nm",
        poly_width=180,
        poly_space=280,
        gate_extension=160,
        active_width=320,
        active_space=320,
        active_extension=500,
        contact_size=220,
        contact_space=280,
        contact_to_gate=160,
        poly_enclosure_of_contact=100,
        active_enclosure_of_contact=100,
        metal1_enclosure_of_contact=100,
        metal1_width=240,
        metal1_space=240,
        via1_size=220,
        metal1_enclosure_of_via1=100,
        metal2_width=280,
        metal2_space=280,
        cell_height=6000,
        rail_width=480,
        nwell_overlap_of_active=480,
    )


def node_130nm() -> DesignRules:
    """The next shrink: KrF pushed to k1 ~ 0.36, model-based OPC territory."""
    return DesignRules(
        name="130nm",
        poly_width=130,
        poly_space=210,
        gate_extension=120,
        active_width=240,
        active_space=240,
        active_extension=370,
        contact_size=160,
        contact_space=210,
        contact_to_gate=120,
        poly_enclosure_of_contact=70,
        active_enclosure_of_contact=70,
        metal1_enclosure_of_contact=70,
        metal1_width=180,
        metal1_space=180,
        via1_size=160,
        metal1_enclosure_of_via1=70,
        metal2_width=210,
        metal2_space=210,
        cell_height=4400,
        rail_width=360,
        nwell_overlap_of_active=360,
    )


def drc_ruleset(rules: DesignRules) -> List[DRCRule]:
    """The node's core DRC deck (widths, spaces, enclosures)."""
    return [
        width_rule("poly.w", POLY, rules.poly_width),
        space_rule("poly.s", POLY, rules.poly_space),
        width_rule("active.w", ACTIVE, rules.active_width),
        space_rule("active.s", ACTIVE, rules.active_space),
        width_rule("m1.w", METAL1, rules.metal1_width),
        space_rule("m1.s", METAL1, rules.metal1_space),
        width_rule("m2.w", METAL2, rules.metal2_width),
        space_rule("m2.s", METAL2, rules.metal2_space),
        space_rule("ct.s", CONTACT, rules.contact_space),
        enclosure_rule("m1.enc.ct", METAL1, CONTACT, rules.metal1_enclosure_of_contact),
        enclosure_rule("m1.enc.v1", METAL1, VIA1, rules.metal1_enclosure_of_via1),
    ]
