"""Parametric standard-cell layout generation.

Cells follow the classic two-row CMOS template: NMOS strip above the VSS
rail, PMOS strip below the VDD rail, vertical poly gates crossing both,
input poly pads in the mid-cell gap, source contacts strapped to the
rails and drain contacts joined by an output strap.  The electrical
netlist is schematic-level plausible; what the experiments consume is the
realistic *geometry*: gate pitch, line ends, contact lattices, bends.

All dimensions derive from a :class:`~repro.design.rules.DesignRules`, so
the same generator emits 250/180/130 nm libraries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DesignError
from ..geometry import Rect
from ..layout import (
    ACTIVE,
    BOUNDARY,
    CONTACT,
    Cell,
    Library,
    METAL1,
    NIMPLANT,
    NWELL,
    PIMPLANT,
    POLY,
)
from .primitives import transistor_stack
from .rules import DesignRules


@dataclass(frozen=True)
class CellSpec:
    """Template parameters of one logic cell."""

    name: str
    gates: int


#: The library contents: name -> gate count of the cell template.
STANDARD_CELLS = (
    CellSpec("INV", 1),
    CellSpec("BUF", 2),
    CellSpec("NAND2", 2),
    CellSpec("NOR2", 2),
    CellSpec("AOI21", 3),
    CellSpec("OAI22", 4),
    CellSpec("DFF", 8),
)


class StdCellGenerator:
    """Builds the standard-cell library for one rule set."""

    def __init__(self, rules: DesignRules):
        self.rules = rules
        r = rules
        self.nmos_width = 4 * r.active_width
        self.pmos_width = 5 * r.active_width
        self.mid_gap = 5 * r.contact_size
        self.edge_margin = r.poly_space // 2 + r.poly_width // 2
        self.nmos_y0 = r.rail_width + r.metal1_space + r.active_space // 2
        self.pmos_y0 = self.nmos_y0 + self.nmos_width + self.mid_gap

    @property
    def cell_height(self) -> int:
        """Uniform height of every generated cell."""
        r = self.rules
        return (
            self.pmos_y0
            + self.pmos_width
            + r.active_space // 2
            + r.metal1_space
            + r.rail_width
        )

    def cell_width(self, gates: int) -> int:
        """Width of a cell with ``gates`` poly fingers."""
        r = self.rules
        body = 2 * r.active_extension + gates * r.poly_pitch - (
            r.poly_pitch - r.poly_width
        )
        return body + 2 * self.edge_margin

    def make_cell(self, spec: CellSpec) -> Cell:
        """Generate one cell from its template spec."""
        if spec.gates < 1:
            raise DesignError(f"cell {spec.name!r} needs at least one gate")
        r = self.rules
        cell = Cell(spec.name)
        width = self.cell_width(spec.gates)
        height = self.cell_height
        cell.add(BOUNDARY, Rect(0, 0, width, height))

        # Power rails, labelled so net extraction names them.
        cell.add(METAL1, Rect(0, 0, width, r.rail_width))
        cell.add(METAL1, Rect(0, height - r.rail_width, width, height))
        cell.add_label(METAL1, "VSS", (width // 2, r.rail_width // 2))
        cell.add_label(METAL1, "VDD", (width // 2, height - r.rail_width // 2))

        # Device strips.
        x0 = self.edge_margin
        nmos_active, nmos_gates, nmos_contacts = transistor_stack(
            r, (x0, self.nmos_y0), spec.gates, self.nmos_width
        )
        pmos_active, pmos_gates, pmos_contacts = transistor_stack(
            r, (x0, self.pmos_y0), spec.gates, self.pmos_width
        )
        cell.add(ACTIVE, nmos_active)
        cell.add(ACTIVE, pmos_active)
        cell.add(NIMPLANT, nmos_active.expanded(r.active_space // 2))
        cell.add(PIMPLANT, pmos_active.expanded(r.active_space // 2))
        # Nwell spans the full cell width (abutting cells share one well).
        cell.add(
            NWELL, Rect(0, self.pmos_y0 - r.nwell_overlap_of_active, width, height)
        )

        # Gates: one continuous poly finger spanning both devices, with an
        # input landing pad in the mid-cell gap on alternating sides of the
        # finger.  The pad is poly-only (route-to-poly pin style): an m1
        # landing here would short the input to the neighbouring drain
        # strap at this gate pitch.
        pad = r.contact_size + 2 * r.poly_enclosure_of_contact
        for k, (ng, pg) in enumerate(zip(nmos_gates, pmos_gates)):
            cell.add(POLY, Rect(ng.x1, ng.y1, ng.x2, pg.y2))
            pad_y = self.nmos_y0 + self.nmos_width + r.gate_extension + (
                0 if k % 2 == 0 else pad
            )
            pad_x1 = ng.x1 + r.poly_width // 2 - pad // 2
            cell.add(POLY, Rect(pad_x1, pad_y, pad_x1 + pad, pad_y + pad))

        # Source/drain contacts and metal1 straps.  Columns alternate
        # source (strapped to the rail) and drain (strapped to the
        # opposite device's drain as the output).
        for idx, (nc, pc) in enumerate(zip(nmos_contacts, pmos_contacts)):
            for center, is_pmos in ((nc, False), (pc, True)):
                cut = Rect.from_center(center, r.contact_size, r.contact_size)
                cell.add(CONTACT, cut)
                pad_m1 = cut.expanded(r.metal1_enclosure_of_contact)
                cell.add(METAL1, pad_m1)
                if idx % 2 == 0:  # source column: strap to the rail
                    if is_pmos:
                        cell.add(
                            METAL1,
                            Rect(pad_m1.x1, pad_m1.y1, pad_m1.x2, height - r.rail_width),
                        )
                    else:
                        cell.add(METAL1, Rect(pad_m1.x1, r.rail_width, pad_m1.x2, pad_m1.y2))
            if idx % 2 == 1:  # drain column: vertical output strap
                ncut = Rect.from_center(nc, r.contact_size, r.contact_size)
                pcut = Rect.from_center(pc, r.contact_size, r.contact_size)
                strap_x1 = ncut.x1 - r.metal1_enclosure_of_contact
                strap_x2 = ncut.x2 + r.metal1_enclosure_of_contact
                cell.add(METAL1, Rect(strap_x1, ncut.y1, strap_x2, pcut.y2))
        return cell

    def library(self, name: str = "stdcells") -> Library:
        """The full standard-cell library for this rule set."""
        lib = Library(f"{name}_{self.rules.name}")
        for spec in STANDARD_CELLS:
            lib.add(self.make_cell(spec))
        return lib


def cell_by_name(library: Library, name: str) -> Cell:
    """Convenience lookup mirroring ``library[name]``."""
    return library[name]
