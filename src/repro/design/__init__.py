"""Synthetic design generation: the open-layout substitute.

Public surface:

* rule sets: :func:`node_250nm`, :func:`node_180nm`, :func:`node_130nm`,
  :class:`DesignRules`, :func:`drc_ruleset`;
* primitives: :func:`wire`, :func:`contact`, :func:`via1`,
  :func:`transistor_stack`;
* standard cells: :class:`StdCellGenerator`, :data:`STANDARD_CELLS`;
* SRAM: :func:`sram_cell`, :func:`sram_array`;
* test patterns: :func:`line_space_array`, :func:`isolated_line`,
  :func:`line_end_gap`, :func:`elbow`, :func:`contact_array`,
  :func:`pitch_sweep`, :func:`dense_to_iso_transition`,
  :class:`TestPattern`;
* place and route: :func:`place_rows`, :func:`fill_row`,
  :class:`GridRouter`, :func:`random_logic_block`, :class:`BlockSpec`.
"""

from .blocks import BlockSpec, random_logic_block
from .placer import fill_row, place_rows
from .primitives import contact, transistor_stack, via1, wire
from .router import GridRouter
from .rules import DesignRules, drc_ruleset, node_130nm, node_180nm, node_250nm
from .sram import sram_array, sram_cell
from .stdcells import STANDARD_CELLS, CellSpec, StdCellGenerator
from .testpatterns import (
    TestPattern,
    comb_serpentine,
    contact_array,
    dense_to_iso_transition,
    elbow,
    isolated_line,
    line_end_gap,
    line_space_array,
    pitch_sweep,
)

__all__ = [
    "BlockSpec",
    "CellSpec",
    "DesignRules",
    "GridRouter",
    "STANDARD_CELLS",
    "StdCellGenerator",
    "TestPattern",
    "comb_serpentine",
    "contact",
    "contact_array",
    "dense_to_iso_transition",
    "drc_ruleset",
    "elbow",
    "fill_row",
    "isolated_line",
    "line_end_gap",
    "line_space_array",
    "node_130nm",
    "node_180nm",
    "node_250nm",
    "pitch_sweep",
    "place_rows",
    "random_logic_block",
    "sram_array",
    "sram_cell",
    "transistor_stack",
    "via1",
    "wire",
]
