"""Layout primitives: wires, contacts, transistors.

Small geometric builders the cell generators compose.  All builders return
plain geometry (rects/regions); layer assignment happens at the cell level.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import DesignError
from ..geometry import Coord, Rect, Region
from .rules import DesignRules


def wire(points: Sequence[Coord], width: int) -> Region:
    """A rectilinear wire of ``width`` through ``points``.

    Consecutive points must differ along exactly one axis.  Corners are
    filled with squares so bends are solid.
    """
    if width <= 0:
        raise DesignError(f"wire width must be positive, got {width}")
    if len(points) < 2:
        raise DesignError("wire needs at least two points")
    half = width // 2
    rects: List[Rect] = []
    for (x1, y1), (x2, y2) in zip(points, points[1:]):
        if x1 != x2 and y1 != y2:
            raise DesignError(f"non-rectilinear wire segment ({x1},{y1})->({x2},{y2})")
        if x1 == x2 and y1 == y2:
            continue
        if y1 == y2:  # horizontal segment
            rects.append(Rect(min(x1, x2), y1 - half, max(x1, x2), y1 + half))
        else:  # vertical segment
            rects.append(Rect(x1 - half, min(y1, y2), x1 + half, max(y1, y2)))
    # Corner squares make bends solid regardless of segment order.
    for x, y in points[1:-1]:
        rects.append(Rect(x - half, y - half, x + half, y + half))
    return Region.from_rects(rects).merged()


def contact(rules: DesignRules, center: Coord) -> Tuple[Rect, Rect]:
    """A contact cut plus its metal1 landing pad, centred on ``center``."""
    cut = Rect.from_center(center, rules.contact_size, rules.contact_size)
    pad = cut.expanded(rules.metal1_enclosure_of_contact)
    return cut, pad


def via1(rules: DesignRules, center: Coord) -> Tuple[Rect, Rect, Rect]:
    """A via1 cut plus metal1 and metal2 landing pads."""
    cut = Rect.from_center(center, rules.via1_size, rules.via1_size)
    pad = cut.expanded(rules.metal1_enclosure_of_via1)
    return cut, pad, pad


def transistor_stack(
    rules: DesignRules,
    origin: Coord,
    gates: int,
    channel_width: int,
) -> Tuple[Rect, List[Rect], List[Coord]]:
    """A multi-finger transistor: active strip, gate polys, contact slots.

    ``origin`` is the lower-left of the active strip.  Gates are vertical,
    on the contacted poly pitch; source/drain contact positions lie between
    and outside the gates.  Returns ``(active, gate_rects,
    contact_centers)``.
    """
    if gates < 1:
        raise DesignError(f"need at least one gate, got {gates}")
    if channel_width < rules.active_width:
        raise DesignError(
            f"channel width {channel_width} below active minimum "
            f"{rules.active_width}"
        )
    needed_extension = (
        rules.contact_to_gate
        + rules.contact_size
        + rules.active_enclosure_of_contact
    )
    if rules.active_extension < needed_extension:
        raise DesignError(
            f"active extension {rules.active_extension} cannot land an end "
            f"contact (needs {needed_extension})"
        )
    ox, oy = origin
    pitch = rules.poly_pitch
    active_len = 2 * rules.active_extension + gates * pitch - (
        pitch - rules.poly_width
    )
    active = Rect(ox, oy, ox + active_len, oy + channel_width)
    gate_rects: List[Rect] = []
    contact_centers: List[Coord] = []
    cy = oy + channel_width // 2
    first_gate_x = ox + rules.active_extension
    for k in range(gates):
        gx = first_gate_x + k * pitch
        gate_rects.append(
            Rect(
                gx,
                oy - rules.gate_extension,
                gx + rules.poly_width,
                oy + channel_width + rules.gate_extension,
            )
        )
    # Contacts: at contact-to-gate from the end gates, and centred in each
    # interior source/drain gap -- all landing on the contacted pitch.
    ct_offset = rules.contact_to_gate + rules.contact_size // 2
    contact_centers.append((first_gate_x - ct_offset, cy))
    for k in range(gates - 1):
        gap_left = first_gate_x + k * pitch + rules.poly_width
        gap_right = first_gate_x + (k + 1) * pitch
        contact_centers.append(((gap_left + gap_right) // 2, cy))
    last_gate_right = first_gate_x + (gates - 1) * pitch + rules.poly_width
    contact_centers.append((last_gate_right + ct_offset, cy))
    return active, gate_rects, contact_centers
