"""A grid-based maze router for block-level metal2 interconnect.

BFS (Lee) routing on a uniform track grid: each routed net marks its
cells occupied, so later nets detour around earlier ones.  One layer with
both directions is crude next to a production router, but it produces
exactly what the experiments need: realistic wire geometry (doglegs,
jogs, varying neighbourhoods) with guaranteed spacing by construction.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import DesignError
from ..geometry import Coord, Rect, Region
from .primitives import wire

GridCell = Tuple[int, int]


class GridRouter:
    """Maze routing over a track grid inside a routing area."""

    def __init__(self, area: Rect, track_pitch: int, wire_width: int):
        if track_pitch <= 0 or wire_width <= 0:
            raise DesignError("track pitch and wire width must be positive")
        if wire_width >= track_pitch:
            raise DesignError(
                f"wire width {wire_width} must be below track pitch {track_pitch} "
                "or adjacent tracks would short"
            )
        self.area = area
        self.pitch = track_pitch
        self.wire_width = wire_width
        self.cols = max(1, area.width // track_pitch)
        self.rows = max(1, area.height // track_pitch)
        self._occupied: Set[GridCell] = set()
        self.paths: List[List[Coord]] = []

    # -- grid mapping -----------------------------------------------------------

    def snap(self, point: Coord) -> GridCell:
        """The grid cell containing a layout point."""
        x, y = point
        col = (x - self.area.x1) // self.pitch
        row = (y - self.area.y1) // self.pitch
        return (
            min(max(col, 0), self.cols - 1),
            min(max(row, 0), self.rows - 1),
        )

    def cell_center(self, cell: GridCell) -> Coord:
        """Layout coordinates of a grid cell's centre."""
        col, row = cell
        return (
            self.area.x1 + col * self.pitch + self.pitch // 2,
            self.area.y1 + row * self.pitch + self.pitch // 2,
        )

    # -- routing --------------------------------------------------------------

    def route(self, start: Coord, goal: Coord) -> Optional[List[Coord]]:
        """Route one net; returns corner points or ``None`` when blocked.

        The path is recorded as occupied so subsequent nets avoid it.
        """
        s = self.snap(start)
        g = self.snap(goal)
        if s in self._occupied or g in self._occupied:
            return None
        if s == g:
            return None
        came: Dict[GridCell, GridCell] = {s: s}
        queue = deque([s])
        while queue:
            cell = queue.popleft()
            if cell == g:
                break
            col, row = cell
            for nxt in (
                (col + 1, row),
                (col - 1, row),
                (col, row + 1),
                (col, row - 1),
            ):
                if not (0 <= nxt[0] < self.cols and 0 <= nxt[1] < self.rows):
                    continue
                if nxt in self._occupied or nxt in came:
                    continue
                came[nxt] = cell
                queue.append(nxt)
        if g not in came:
            return None
        cells: List[GridCell] = [g]
        while cells[-1] != s:
            cells.append(came[cells[-1]])
        cells.reverse()
        for cell in cells:
            self._occupied.add(cell)
        corners = _simplify([self.cell_center(c) for c in cells])
        self.paths.append(corners)
        return corners

    def wire_region(self) -> Region:
        """All routed nets as one merged wire region."""
        pieces = [wire(path, self.wire_width) for path in self.paths if len(path) > 1]
        result = Region()
        for piece in pieces:
            result._add(piece)
        return result.merged()

    @property
    def utilisation(self) -> float:
        """Fraction of grid cells consumed by routing."""
        return len(self._occupied) / float(self.cols * self.rows)


def _simplify(points: Sequence[Coord]) -> List[Coord]:
    """Drop collinear interior points, keeping only corners."""
    if len(points) <= 2:
        return list(points)
    result = [points[0]]
    for prev, cur, nxt in zip(points, points[1:], points[2:]):
        ax, ay = cur[0] - prev[0], cur[1] - prev[1]
        bx, by = nxt[0] - cur[0], nxt[1] - cur[1]
        if ax * by - ay * bx != 0:
            result.append(cur)
    result.append(points[-1])
    return result
