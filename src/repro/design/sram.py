"""A compact 6T SRAM bit cell and array generator.

SRAM was the densest repetitive pattern of the era -- the first place
proximity effects bit and the showcase for hierarchy-friendly mask data
(one cell definition, millions of placements).  The cell here is a
simplified but geometrically-faithful 6T layout: two vertical gate fingers
(cross-coupled pair), a horizontal word-line poly, two active regions,
bit-line metal1 and a contact lattice.
"""

from __future__ import annotations

from ..errors import DesignError
from ..geometry import Rect
from ..layout import ACTIVE, BOUNDARY, CONTACT, Cell, Library, METAL1, NWELL, POLY
from .rules import DesignRules


def sram_cell(rules: DesignRules, name: str = "SRAM6T") -> Cell:
    """The 6T bit cell for one rule set.

    Cell proportions follow the classic ~2:1 wide/tall 6T aspect; absolute
    size scales with the poly pitch.
    """
    r = rules
    pitch = r.poly_pitch
    width = 3 * pitch  # two pull-down/access columns plus a pull-up column
    height = 2 * pitch + r.active_width + 2 * r.active_space
    cell = Cell(name)
    cell.add(BOUNDARY, Rect(0, 0, width, height))

    # Two horizontal active strips: bottom NMOS (pull-down + access),
    # top PMOS (pull-ups).
    nmos = Rect(r.active_space // 2, r.active_space, width - r.active_space // 2,
                r.active_space + 2 * r.active_width)
    pmos_y0 = height - r.active_space - r.active_width
    pmos = Rect(pitch // 2, pmos_y0, width - pitch // 2, pmos_y0 + r.active_width)
    cell.add(ACTIVE, nmos)
    cell.add(ACTIVE, pmos)
    cell.add(NWELL, Rect(0, pmos_y0 - r.nwell_overlap_of_active, width, height))

    # Cross-coupled vertical gates: two fingers crossing both strips.
    for k, gx in enumerate((pitch - r.poly_width // 2, 2 * pitch - r.poly_width // 2)):
        cell.add(
            POLY,
            Rect(gx, nmos.y1 - r.gate_extension, gx + r.poly_width,
                 pmos.y2 + r.gate_extension),
        )
    # Word line: a horizontal poly routing across the cell between strips.
    wl_y = (nmos.y2 + pmos.y1) // 2 - r.poly_width // 2
    cell.add(POLY, Rect(0, wl_y, width, wl_y + r.poly_width))

    # Contacts: bit-line contacts at the cell edges, internal node contacts
    # between the gates, and a well tap row.
    cy_n = (nmos.y1 + nmos.y2) // 2
    cy_p = (pmos.y1 + pmos.y2) // 2
    ct = r.contact_size
    positions = [
        (pitch // 2, cy_n),  # bit-line true
        (width - pitch // 2, cy_n),  # bit-line complement
        (3 * pitch // 2, cy_n),  # internal node
        (3 * pitch // 2, cy_p),  # pull-up shared node
    ]
    for cx, cy in positions:
        cut = Rect.from_center((cx, cy), ct, ct)
        cell.add(CONTACT, cut)
        cell.add(METAL1, cut.expanded(r.metal1_enclosure_of_contact))

    # Bit lines: vertical metal1 pair at the cell edges.
    bl_half = r.metal1_width // 2
    for cx in (pitch // 2, width - pitch // 2):
        cell.add(METAL1, Rect(cx - bl_half, 0, cx + bl_half, height))
    return cell


def sram_array(
    rules: DesignRules, cols: int, rows: int, name: str = "sram_array"
) -> Library:
    """A ``cols x rows`` bit-cell array library with mirrored tiling.

    Cells are mirrored in alternate rows (the real 6T tiling trick that
    shares contacts across cell boundaries), expressed as two AREFs.
    """
    if cols < 1 or rows < 1:
        raise DesignError(f"array must be at least 1x1, got {cols}x{rows}")
    lib = Library(name)
    bit = lib.add(sram_cell(rules))
    box = bit.bbox()
    top = lib.new_cell(f"{name}_top")
    even_rows = (rows + 1) // 2
    odd_rows = rows // 2
    from ..geometry import Transform

    top.place_array(
        bit, cols=cols, rows=even_rows, col_pitch=box.width, row_pitch=2 * box.height
    )
    if odd_rows:
        top.place_array(
            bit,
            cols=cols,
            rows=odd_rows,
            col_pitch=box.width,
            row_pitch=2 * box.height,
            transform=Transform(dy=2 * box.height, mirror_x=True),
        )
    return lib
