"""Lithography test patterns: the structures every experiment measures.

Each builder returns a :class:`TestPattern` bundling the geometry, the
window to simulate, and the named measurement sites -- so benchmarks and
tests never re-derive coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import DesignError
from ..geometry import Coord, Rect, Region


@dataclass(frozen=True)
class TestPattern:
    """Geometry plus measurement bookkeeping for one test structure."""

    name: str
    region: Region
    window: Rect
    sites: Dict[str, Coord] = field(default_factory=dict)

    def site(self, name: str) -> Coord:
        """A named measurement point."""
        try:
            return self.sites[name]
        except KeyError:
            raise DesignError(
                f"pattern {self.name!r} has no site {name!r}; "
                f"available: {sorted(self.sites)}"
            ) from None


def line_space_array(
    width: int, space: int, count: int = 9, length: int = 4000
) -> TestPattern:
    """``count`` vertical lines of ``width`` at pitch ``width + space``.

    The centre line's midpoint is the canonical CD site; the pattern is
    centred on the origin.
    """
    if width <= 0 or space <= 0 or count < 1:
        raise DesignError("line/space parameters must be positive")
    pitch = width + space
    x0 = -(count // 2) * pitch - width // 2
    rects = [
        Rect(x0 + k * pitch, -length // 2, x0 + k * pitch + width, length // 2)
        for k in range(count)
    ]
    centre = x0 + (count // 2) * pitch + width // 2
    return TestPattern(
        name=f"ls_w{width}_s{space}",
        region=Region.from_rects(rects),
        window=Rect(-pitch, -length // 4, pitch, length // 4),
        sites={
            "center": (centre, 0),
            "left_edge": (centre - width // 2, 0),
            "right_edge": (centre + width // 2, 0),
        },
    )


def isolated_line(width: int, length: int = 4000) -> TestPattern:
    """A single line centred on the origin."""
    if width <= 0:
        raise DesignError(f"width must be positive, got {width}")
    return TestPattern(
        name=f"iso_w{width}",
        region=Region(Rect(-width // 2, -length // 2, width // 2, length // 2)),
        window=Rect(-width * 4 - 400, -length // 4, width * 4 + 400, length // 4),
        sites={"center": (0, 0)},
    )


def line_end_gap(width: int, gap: int, length: int = 3000) -> TestPattern:
    """Two facing vertical line ends separated by ``gap`` (tip-to-tip).

    The canonical pullback structure: the printed gap is always larger
    than drawn, and the line-end EPE sites measure by how much.
    """
    if width <= 0 or gap <= 0:
        raise DesignError("width and gap must be positive")
    half = gap // 2
    region = Region.from_rects(
        [
            Rect(-width // 2, half, width // 2, half + length),
            Rect(-width // 2, -half - length, width // 2, -half),
        ]
    )
    return TestPattern(
        name=f"lineend_w{width}_g{gap}",
        region=region,
        window=Rect(-width * 3 - 300, -gap - 600, width * 3 + 300, gap + 600),
        sites={
            "upper_tip": (0, half),
            "lower_tip": (0, -half),
            "gap_center": (0, 0),
        },
    )


def elbow(width: int, arm: int = 1500) -> TestPattern:
    """An L-shaped bend: the corner-rounding workhorse."""
    if width <= 0 or arm <= width:
        raise DesignError("need positive width and arm > width")
    region = Region.from_rects(
        [Rect(0, 0, arm, width), Rect(0, 0, width, arm)]
    )
    return TestPattern(
        name=f"elbow_w{width}",
        region=region,
        window=Rect(-400, -400, arm + 400, arm + 400),
        sites={
            "outer_corner": (0, 0),
            "inner_corner": (width, width),
            "h_arm": (arm * 2 // 3, width // 2),
            "v_arm": (width // 2, arm * 2 // 3),
        },
    )


def dense_to_iso_transition(
    width: int, space: int, count: int = 5, length: int = 4000
) -> TestPattern:
    """A dense grating whose last line faces open space on one side.

    The transition line gets a dense environment on the left and an
    isolated one on the right -- the asymmetric-bias worst case for
    rule-based OPC.
    """
    pattern = line_space_array(width, space, count, length)
    pitch = width + space
    last_x = -(count // 2) * pitch + (count - 1) * pitch
    return TestPattern(
        name=f"dense2iso_w{width}_s{space}",
        region=pattern.region,
        window=Rect(last_x - 2 * pitch, -length // 4, last_x + 4 * pitch, length // 4),
        sites={"transition_line": (last_x, 0)},
    )


def contact_array(size: int, space: int, nx: int = 5, ny: int = 5) -> TestPattern:
    """A grid of square contacts (dark-field imaging workload)."""
    if size <= 0 or space <= 0 or nx < 1 or ny < 1:
        raise DesignError("contact array parameters must be positive")
    pitch = size + space
    x0 = -(nx // 2) * pitch
    y0 = -(ny // 2) * pitch
    rects = [
        Rect.from_center((x0 + i * pitch, y0 + j * pitch), size, size)
        for i in range(nx)
        for j in range(ny)
    ]
    return TestPattern(
        name=f"ct_{size}_{space}",
        region=Region.from_rects(rects),
        window=Rect(-pitch - size, -pitch - size, pitch + size, pitch + size),
        sites={"center": (0, 0)},
    )


def comb_serpentine(
    width: int, space: int, rows: int = 7, row_length: int = 3000
) -> TestPattern:
    """The classic defect monitor: a serpentine interdigitated with a comb.

    The serpentine snakes through ``rows`` horizontal lines joined by
    alternating end stubs; comb fingers reach into every other inter-row
    gap from a spine on the right.  Electrically the drawn structure has
    exactly two nets: a bridge defect shorts them, an open breaks the
    serpentine's continuity -- both detectable with
    :func:`repro.verify.extract_nets` on drawn or printed geometry.
    """
    if width <= 0 or space <= 0:
        raise DesignError("comb/serpentine needs positive dimensions")
    if rows < 3 or rows % 2 == 0:
        raise DesignError("rows must be odd and >= 3 (snake ends on one side)")
    pitch = 2 * (width + space)
    shapes: List[Rect] = []
    # Serpentine rows plus alternating end stubs.
    for i in range(rows):
        shapes.append(Rect(0, i * pitch, row_length, i * pitch + width))
    for i in range(rows - 1):
        if i % 2 == 0:  # join rows i, i+1 on the right
            shapes.append(
                Rect(row_length - width, i * pitch, row_length, (i + 1) * pitch + width)
            )
        else:  # join on the left
            shapes.append(Rect(0, i * pitch, width, (i + 1) * pitch + width))
    serpentine = Region.from_rects(shapes)
    # Comb fingers enter odd gaps (whose serpentine stub is on the left),
    # reaching a vertical spine to the right of the whole snake.
    spine_x = row_length + space
    fingers: List[Rect] = [
        Rect(spine_x, 0, spine_x + width, (rows - 1) * pitch + width)
    ]
    for i in range(1, rows - 1, 2):
        y = i * pitch + width + space
        fingers.append(Rect(width + space, y, spine_x + width, y + width))
    comb = Region.from_rects(fingers)
    return TestPattern(
        name=f"combserp_w{width}_s{space}",
        region=serpentine | comb,
        window=Rect(-400, -400, spine_x + width + 400, rows * pitch + 400),
        sites={
            "serpentine_start": (row_length // 3, width // 2),
            "serpentine_end": (row_length // 3, (rows - 1) * pitch + width // 2),
            "comb": (spine_x + width // 2, pitch),
        },
    )


def pitch_sweep(
    width: int, pitches: List[int], length: int = 4000
) -> List[TestPattern]:
    """One line/space array per pitch (the proximity-curve workload)."""
    patterns = []
    for pitch in pitches:
        space = pitch - width
        if space <= 0:
            raise DesignError(f"pitch {pitch} not larger than width {width}")
        patterns.append(line_space_array(width, space, length=length))
    return patterns
