"""Seeded random-logic block generation: place-and-route workloads.

A block is rows of randomly chosen standard cells plus maze-routed metal2
interconnect and via1 landings -- the "typical ASIC" geometry the paper's
hierarchy and data-volume arguments are about.  Generation is fully
deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..errors import DesignError
from ..geometry import Rect, Region
from ..layout import Cell, Library, METAL1, METAL2, VIA1
from .placer import fill_row, place_rows
from .router import GridRouter
from .rules import DesignRules
from .stdcells import StdCellGenerator


@dataclass(frozen=True)
class BlockSpec:
    """Parameters of a random logic block."""

    rows: int = 6
    row_width: int = 30000
    nets: int = 20
    seed: int = 42

    def validated(self) -> "BlockSpec":
        """Return self, raising :class:`DesignError` on nonsense values."""
        if self.rows < 1 or self.row_width < 2000:
            raise DesignError("block needs at least one row of usable width")
        if self.nets < 0:
            raise DesignError("net count must be non-negative")
        return self


def random_logic_block(
    rules: DesignRules,
    spec: BlockSpec = BlockSpec(),
    name: str = "block",
) -> Library:
    """Generate a placed-and-routed random logic block.

    Returns a library whose top cell holds the placed rows plus routed
    metal2/via1; the standard cells remain referenced (hierarchical), so
    hierarchy experiments can compare against the flattened view.
    """
    spec = spec.validated()
    rng = random.Random(spec.seed)
    generator = StdCellGenerator(rules)
    lib = generator.library(name=f"{name}_lib")

    rows: List[List[Cell]] = [
        fill_row(lib.cells, spec.row_width, rng) for _ in range(spec.rows)
    ]
    top = place_rows(f"{name}_top", rows)
    lib.add_tree(top)

    if spec.nets:
        _route_block(top, rules, spec, rng)
    return lib


def _route_block(
    top: Cell, rules: DesignRules, spec: BlockSpec, rng: random.Random
) -> None:
    """Maze-route random pin-pair nets over the placed rows.

    Net endpoints are chosen so their metal1 via landings keep design-rule
    clearance to the cell-level metal1 underneath -- a stand-in for real
    pin locations.
    """
    box = top.bbox()
    if box is None:  # pragma: no cover - placement always yields geometry
        raise DesignError("cannot route an empty block")
    router = GridRouter(
        area=box,
        track_pitch=2 * rules.metal2_pitch,
        wire_width=rules.metal2_width,
    )
    m1_index = _metal1_index(top)
    pad_halo = (
        rules.via1_size // 2
        + rules.metal1_enclosure_of_via1
        + rules.metal1_space
    )
    landing_cells = _clear_landing_cells(router, m1_index, pad_halo)
    routed = 0
    attempts = 0
    via_pads: List[Rect] = []
    while routed < spec.nets and attempts < spec.nets * 8 and len(landing_cells) >= 2:
        attempts += 1
        a = landing_cells[rng.randrange(len(landing_cells))]
        b = landing_cells[rng.randrange(len(landing_cells))]
        if a == b:
            continue
        path = router.route(a, b)
        if path is None:
            continue
        landing_cells = [c for c in landing_cells if c not in (a, b)]
        routed += 1
        for endpoint in (path[0], path[-1]):
            cut = Rect.from_center(endpoint, rules.via1_size, rules.via1_size)
            pad = cut.expanded(rules.metal1_enclosure_of_via1)
            top.add(VIA1, cut)
            top.add(METAL1, pad)  # the metal1 pin landing under the via
            m1_index.insert(pad.expanded(rules.metal1_space), pad)
            via_pads.append(pad)
    wires = router.wire_region()
    if not wires.is_empty:
        top.set_region(METAL2, wires | Region.from_rects(via_pads))


def _metal1_index(top: Cell):
    """A spatial index of all flattened metal1 bounding boxes."""
    from ..geometry import GridIndex

    index: "GridIndex[Rect]" = GridIndex(cell_size=4000)
    for poly in top.flat_region(METAL1).polygons():
        bbox = poly.bbox()
        index.insert(bbox, bbox)
    return index


def _is_clear(point, index, halo: int) -> bool:
    probe = Rect.from_center(point, 2 * halo, 2 * halo)
    return not any(True for _ in index.query(probe))


def _clear_landing_cells(router: GridRouter, index, halo: int):
    """Every routing-grid centre where a via pad keeps metal1 clearance."""
    cells = []
    for col in range(1, router.cols - 1):
        for row in range(1, router.rows - 1):
            center = router.cell_center((col, row))
            if _is_clear(center, index, halo):
                cells.append(center)
    return cells
