"""Observability: hierarchical tracing and metrics for the OPC pipeline.

The paper's adoption story is a cost story -- runtime, data volume,
hierarchy breakage -- and this package is how the library measures those
costs live instead of via scattered ``perf_counter`` deltas.  Three
pieces:

* :mod:`~repro.obs.trace` -- nested wall-clock spans with attributes
  (``span("tapeout")``), thread-local span stacks.
* :mod:`~repro.obs.metrics` -- a process-wide registry of counters,
  gauges and fixed-bucket histograms (``sim.aerial_calls``,
  ``tile.runtime_s``, ...).
* :mod:`~repro.obs.export` -- JSON (span tree + Chrome-trace events +
  metric snapshot) and markdown exporters.
* :mod:`~repro.obs.runs` -- the persistent run ledger (records, diffs,
  regression gates, HTML dashboard).
* :mod:`~repro.obs.spatial` -- spatial hotspot diagnostics: binned EPE
  grids, worst-site ranking, per-tile convergence curves mined from the
  trace, and SVG/HTML hotspot maps.
* :mod:`~repro.obs.events` -- the live ``repro-event/1`` event bus:
  typed run/phase/tile/iteration/resource/progress events streamed to
  pluggable sinks (JSONL, ring buffer, callback) across the process
  boundary while a run executes.
* :mod:`~repro.obs.watch` -- tail/replay/render consumers of the event
  stream behind the ``repro watch`` CLI.
* :mod:`~repro.obs.prof` -- span-attributed sampling profiler with
  memory telemetry: collapsed stacks tagged with the open span path,
  per-span CPU-vs-wall seconds, tracemalloc per phase, deterministic
  cross-process profile merging and stdlib-only flame-graph SVG/HTML.

Everything is off by default and costs one boolean test per guarded
call; wrap a run in :func:`capture` (or call :func:`enable`) to record::

    from repro import obs

    with obs.capture() as cap:
        tapeout_region(drawn, simulator, dose)
    print(obs.trace_markdown(cap.roots))
    obs.write_trace_json("trace.json", cap.roots)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from .analyze import (
    SLO,
    AdaptiveFloors,
    AnalyzeReport,
    ChangePoint,
    MetricSeries,
    RobustStats,
    SLOStatus,
    analyze_records,
    cusum_changepoints,
    extract_series,
    flakiness,
    learn_floors,
    load_slos,
    robust_stats,
)
from .analyze import gate as gate_run
from .analyze import report_markdown as analyze_markdown
from .events import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    CallbackSink,
    EventBus,
    JsonlSink,
    PoolProgress,
    ProgressTracker,
    RingBufferSink,
    RunEvents,
    run_scope,
    validate_event,
    validate_events,
)
from .events import bus as event_bus
from .events import emit as emit_event
from .expo import (
    CONTENT_TYPE,
    MetricsServer,
    exposition,
    ledger_source,
    openmetrics_name,
    write_textfile,
)
from .export import (
    chrome_trace_events,
    metrics_markdown,
    span_from_dict,
    span_to_dict,
    span_tree_markdown,
    trace_document,
    trace_markdown,
    write_trace_json,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count,
    gauge_set,
    merge_snapshot,
    observe,
    publish_quality,
    registry,
)
from .metrics import reset as reset_metrics
from .prof import (
    PROF_SCHEMA,
    Profile,
    SamplingProfiler,
    absorb_worker_profiles,
    active_profiler,
    collapsed_text,
    flame_html,
    flame_svg,
    merge_profiles,
    prof_enabled,
    profile_from_dict,
    profile_summary,
    profile_to_dict,
    write_collapsed,
    write_flame_html,
    write_flame_svg,
)
from .runs import (
    RUN_SCHEMA,
    SUPPORTED_SCHEMAS,
    Comparison,
    Regression,
    RegressionPolicy,
    RegressionReport,
    RunDiff,
    RunLedger,
    RunRecord,
    check_regressions,
    config_fingerprint,
    dashboard_html,
    diff_markdown,
    diff_runs,
    new_record,
    persist_run_events,
    record_run,
    write_dashboard_html,
)
from .spatial import (
    attribute_sites,
    canonical_spatial,
    epe_grid,
    hotspot_svg,
    inspect_html,
    spatial_quality,
    spatial_summary,
    tile_convergence,
    write_hotspot_svg,
    write_inspect_html,
)
from .state import disable, enable, enabled, enabled_scope
from .trace import Span, current_span, merge_spans, span, take_finished
from .watch import read_events, render_frame, replay, tail_events, watch_live

__all__ = [
    "AdaptiveFloors",
    "AnalyzeReport",
    "CONTENT_TYPE",
    "CallbackSink",
    "Capture",
    "ChangePoint",
    "Comparison",
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricSeries",
    "MetricsRegistry",
    "MetricsServer",
    "PROF_SCHEMA",
    "PoolProgress",
    "Profile",
    "ProgressTracker",
    "RUN_SCHEMA",
    "RingBufferSink",
    "RunEvents",
    "Regression",
    "RegressionPolicy",
    "RegressionReport",
    "RobustStats",
    "RunDiff",
    "RunLedger",
    "RunRecord",
    "SLO",
    "SLOStatus",
    "SUPPORTED_SCHEMAS",
    "SamplingProfiler",
    "Span",
    "analyze_markdown",
    "analyze_records",
    "absorb_worker_profiles",
    "active_profiler",
    "attribute_sites",
    "canonical_spatial",
    "capture",
    "check_regressions",
    "chrome_trace_events",
    "collapsed_text",
    "config_fingerprint",
    "count",
    "cusum_changepoints",
    "exposition",
    "extract_series",
    "flakiness",
    "flame_html",
    "flame_svg",
    "gate_run",
    "learn_floors",
    "ledger_source",
    "load_slos",
    "merge_profiles",
    "openmetrics_name",
    "prof_enabled",
    "profile_from_dict",
    "profile_summary",
    "profile_to_dict",
    "write_collapsed",
    "write_flame_html",
    "write_flame_svg",
    "epe_grid",
    "hotspot_svg",
    "inspect_html",
    "spatial_quality",
    "spatial_summary",
    "tile_convergence",
    "write_hotspot_svg",
    "write_inspect_html",
    "current_span",
    "dashboard_html",
    "diff_markdown",
    "diff_runs",
    "disable",
    "emit_event",
    "enable",
    "enabled",
    "enabled_scope",
    "event_bus",
    "gauge_set",
    "merge_snapshot",
    "merge_spans",
    "metrics_markdown",
    "new_record",
    "observe",
    "persist_run_events",
    "publish_quality",
    "read_events",
    "record_run",
    "registry",
    "render_frame",
    "replay",
    "reset_metrics",
    "robust_stats",
    "run_scope",
    "span",
    "write_dashboard_html",
    "span_from_dict",
    "span_to_dict",
    "span_tree_markdown",
    "tail_events",
    "take_finished",
    "trace_document",
    "trace_markdown",
    "validate_event",
    "validate_events",
    "watch_live",
    "write_textfile",
    "write_trace_json",
]


class Capture:
    """Finished root spans collected by one :func:`capture` block."""

    def __init__(self) -> None:
        self.roots: List[Span] = []

    @property
    def root(self) -> Optional[Span]:
        """The first captured root span (usually the only one)."""
        return self.roots[0] if self.roots else None

    def find(self, name: str) -> Optional[Span]:
        """First span named ``name`` across every captured root."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None


@contextmanager
def capture(fresh_metrics: bool = True) -> Iterator[Capture]:
    """Record spans and metrics for the ``with`` body.

    Enables observability, collects this thread's finished root spans
    into the yielded :class:`Capture`, and restores the prior on/off
    state on exit.  ``fresh_metrics`` resets the global registry first so
    the captured snapshot belongs to this run alone.
    """
    capture_result = Capture()
    take_finished()  # drop stale roots from earlier enabled runs
    if fresh_metrics:
        reset_metrics()
    with enabled_scope(True):
        try:
            yield capture_result
        finally:
            capture_result.roots = take_finished()
