"""Statistical regression intelligence over the run ledger.

:func:`repro.obs.runs.check_regressions` gates one candidate against a
baseline median with hand-tuned thresholds -- it cannot tell drift from
noise, it flags flaky metrics, and it never says *which* run broke the
trend.  This module is the read-side analysis layer that fixes that, all
learned from the ledger's own same-fingerprint history:

* :func:`robust_stats` -- median / MAD statistics (``sigma = 1.4826 *
  MAD``, population-stdev fallback when the MAD degenerates to zero).
* :func:`cusum_changepoints` -- standardized CUSUM with binary
  segmentation; localizes the first run of each new regime.
* :func:`flakiness` -- robust coefficient of variation; metrics above
  the threshold demote from FAIL to WARN in the gate.
* :func:`learn_floors` -- per-span noise floors and per-quality margins
  (``k * sigma``) replacing the hand-tuned ``abs_floor_s``.
* :func:`load_slos` -- declared per-metric SLO budgets from
  ``repro-slo.toml`` or ``pyproject.toml [tool.repro.slo]``.
* :func:`analyze_records` / :func:`report_markdown` -- the trend report
  behind ``repro runs analyze`` (sparklines, change points, SLO burn).
* :func:`gate` -- the single entry point ``repro runs check`` calls:
  plain or adaptive thresholds plus SLO verdicts, one
  :class:`~repro.obs.runs.RegressionReport` out.

Everything here is deterministic: same ledger bytes in, same report
out.  No clocks, no randomness -- analysis must be replayable in CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from statistics import median, pstdev
from typing import (
    Any,
    Collection,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ReproError
from .runs import (
    Regression,
    RegressionPolicy,
    RegressionReport,
    RunRecord,
    check_regressions,
    flatten_metrics,
)

#: Consistency constant turning a median absolute deviation into a
#: normal-equivalent standard deviation.
MAD_SIGMA = 1.4826

#: Minimum detectable effect, in noise sigmas: mean shifts smaller than
#: ``k * sigma`` are ignored even when statistically loud, so the
#: detector never reports sub-noise wiggle as a regime change.
DEFAULT_CUSUM_K = 0.5

#: Decision threshold on the standardized CUSUM statistic
#: (``|sum of deviations| / (sigma * sqrt(t (n-t) / n))``).  For pure
#: noise this statistic is a normalized Brownian bridge whose supremum
#: rarely exceeds ~3; 8 keeps the false-alarm rate negligible for
#: ledger-sized series while a 15% step on 1% noise scores in the
#: tens of sigmas.
DEFAULT_CUSUM_H = 8.0

#: Shortest series the change-point detector will look at.
MIN_SERIES_LEN = 4

#: Robust coefficient of variation (``sigma / |median|``) above which a
#: quality metric counts as flaky and demotes FAIL -> WARN in the gate.
DEFAULT_FLAKY_THRESHOLD = 0.10

#: Adaptive floor width: a candidate regresses when it deviates more
#: than ``k`` robust sigmas of the history from the baseline median.
DEFAULT_FLOOR_K = 4.0

#: Minimum span-time floor, seconds.  With only two history samples the
#: MAD can collapse to microseconds; this keeps scheduler jitter on
#: sub-millisecond spans from tripping the adaptive gate.
MIN_SPAN_FLOOR_S = 1e-3

#: Fingerprint history depth the CLI feeds to adaptive learning and SLO
#: burn windows.
HISTORY_WINDOW = 20

#: Standalone SLO budget file searched in the working directory.
SLO_FILE = "repro-slo.toml"

#: Keys an SLO table may declare.
_SLO_KEYS = frozenset({"objective", "direction", "window", "budget"})


# -- robust statistics --------------------------------------------------------

@dataclass(frozen=True)
class RobustStats:
    """Median/MAD summary of one metric series."""

    n: int
    median: float
    mad: float
    #: ``1.4826 * mad``; falls back to the population stdev when the MAD
    #: is exactly zero (over half the samples identical) so step
    #: detection still has a scale to work with.
    sigma: float
    minimum: float
    maximum: float


def _as_float(value: Any) -> Optional[float]:
    return float(value) if isinstance(value, (int, float)) else None


def robust_stats(values: Sequence[float]) -> RobustStats:
    """Median, MAD and a robust sigma of ``values``."""
    if not values:
        raise ReproError("robust stats need at least one value")
    data = [float(v) for v in values]
    med = median(data)
    mad = median(abs(v - med) for v in data)
    sigma = MAD_SIGMA * mad
    if sigma == 0.0 and len(data) > 1:
        sigma = pstdev(data)
    return RobustStats(
        n=len(data), median=med, mad=mad, sigma=sigma,
        minimum=min(data), maximum=max(data),
    )


def flakiness(values: Sequence[float]) -> float:
    """Robust coefficient of variation: ``sigma / |median|``.

    Zero for constant series; infinite when the series varies around a
    zero median (no scale to normalize by).
    """
    if len(values) < 2:
        return 0.0
    stats = robust_stats(values)
    if stats.sigma == 0.0:
        return 0.0
    if stats.median == 0.0:
        return math.inf
    return stats.sigma / abs(stats.median)


# -- change-point detection ---------------------------------------------------

@dataclass(frozen=True)
class ChangePoint:
    """One detected regime shift in a metric series."""

    #: 0-based index of the first run in the new regime.
    index: int
    direction: str  # "up" or "down"
    #: Medians of the old and new regimes (within the detected segment).
    before: float
    after: float
    #: Standardized CUSUM statistic at the split, in noise sigmas.
    score: float

    @property
    def magnitude(self) -> float:
        return self.after - self.before

    @property
    def pct(self) -> Optional[float]:
        if self.before == 0.0:
            return None
        return 100.0 * (self.after - self.before) / abs(self.before)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "direction": self.direction,
            "before": self.before,
            "after": self.after,
            "score": self.score,
        }


def _diff_sigma(values: Sequence[float]) -> float:
    """Noise sigma estimated from successive differences.

    Robust to the very steps the detector hunts: a level shift
    contributes exactly one outlying difference, which the MAD ignores,
    while a median/MAD over the raw values would be contaminated
    whenever the new regime covers close to half the series.  The
    ``sqrt(2)`` undoes the variance doubling of differencing.
    """
    diffs = [b - a for a, b in zip(values, values[1:])]
    if not diffs:
        return 0.0
    med = median(diffs)
    mad = median(abs(d - med) for d in diffs)
    sigma = MAD_SIGMA * mad / math.sqrt(2.0)
    if sigma == 0.0 and len(set(diffs)) > 1:
        sigma = pstdev(diffs) / math.sqrt(2.0)
    return sigma


def _best_split(
    values: Sequence[float], k: float, h: float
) -> Optional[Tuple[int, str, float]]:
    """``(split, direction, score)`` of the strongest mean shift.

    ``split`` is the first sample of the new regime -- the ``t``
    maximizing the standardized CUSUM statistic ``|C_t| / (sigma *
    sqrt(t (n-t) / n))`` with ``C_t = sum_{i<t} (x_i - mean)``.  Returns
    ``None`` when the best split scores below ``h`` or shifts the
    median by less than ``k`` sigmas.
    """
    n = len(values)
    sigma = _diff_sigma(values)
    if sigma <= 0.0:
        return None  # flat series: nothing to detect against
    mean_all = math.fsum(values) / n
    cusum = 0.0
    best: Optional[Tuple[float, int]] = None
    for t in range(1, n):
        cusum += values[t - 1] - mean_all
        score = abs(cusum) / (sigma * math.sqrt(t * (n - t) / n))
        if best is None or score > best[0]:
            best = (score, t)
    assert best is not None  # n >= MIN_SERIES_LEN > 1
    score, split = best
    if score <= h:
        return None
    before = median(values[:split])
    after = median(values[split:])
    if abs(after - before) < k * sigma:
        return None
    return split, "up" if after > before else "down", score


def cusum_changepoints(
    values: Sequence[float],
    k_sigma: float = DEFAULT_CUSUM_K,
    h_sigma: float = DEFAULT_CUSUM_H,
) -> List[ChangePoint]:
    """Regime shifts in ``values``, localized by standardized CUSUM.

    Binary segmentation: the strongest split divides the series and
    both halves are searched again, so a sustained step yields exactly
    one change point instead of re-alarming every few samples.  Series
    shorter than :data:`MIN_SERIES_LEN` return no change points.
    """
    found: List[ChangePoint] = []

    def segment(data: List[float], offset: int, depth: int) -> None:
        if len(data) < MIN_SERIES_LEN or depth > 12:
            return
        hit = _best_split(data, k_sigma, h_sigma)
        if hit is None:
            return
        split, direction, score = hit
        found.append(
            ChangePoint(
                index=offset + split,
                direction=direction,
                before=median(data[:split]),
                after=median(data[split:]),
                score=score,
            )
        )
        segment(data[:split], offset, depth + 1)
        segment(data[split:], offset + split, depth + 1)

    segment([float(v) for v in values], 0, 0)
    return sorted(found, key=lambda cp: (cp.index, cp.direction))


# -- series extraction --------------------------------------------------------

@dataclass(frozen=True)
class MetricSeries:
    """One metric's history across a same-fingerprint run group."""

    name: str
    run_ids: Tuple[str, ...]
    values: Tuple[float, ...]


def extract_series(
    records: Sequence[RunRecord],
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, MetricSeries]:
    """Per-metric time series over ``records`` (append order).

    Series names: ``run.wall_s``, ``quality.<key>`` for every numeric
    quality value, and each flattened metric name (counters, gauges,
    histogram ``.count``\\ s).  A run missing a metric is skipped in
    that series, not zero-filled.  ``metrics`` restricts the output to
    the named series.
    """
    rows: List[Tuple[str, Dict[str, float]]] = []
    for record in records:
        row: Dict[str, float] = {"run.wall_s": float(record.wall_s)}
        for key in sorted(record.quality):
            value = _as_float(record.quality[key])
            if value is not None:
                row[f"quality.{key}"] = value
        for name, value in flatten_metrics(record.metrics).items():
            number = _as_float(value)
            if number is not None:
                # quality.* gauges were already lifted from the quality
                # dict above; setdefault keeps the two from clashing.
                row.setdefault(name, number)
        rows.append((record.run_id, row))
    names: set = set()
    for _, row in rows:
        names.update(row)
    if metrics is not None:
        names &= set(metrics)
    out: Dict[str, MetricSeries] = {}
    for name in sorted(names):
        ids: List[str] = []
        values: List[float] = []
        for run_id, row in rows:
            if name in row:
                ids.append(run_id)
                values.append(row[name])
        out[name] = MetricSeries(name, tuple(ids), tuple(values))
    return out


# -- adaptive floors ----------------------------------------------------------

@dataclass(frozen=True)
class AdaptiveFloors:
    """Noise floors learned from a run group's history."""

    #: Per-span-path absolute slowdown floor, seconds.
    span_floor_s: Dict[str, float]
    #: Per-quality-key absolute margin (same units as the metric).
    quality_margin: Dict[str, float]
    k: float
    n_history: int


def learn_floors(
    history: Sequence[RunRecord], k: float = DEFAULT_FLOOR_K
) -> AdaptiveFloors:
    """``k * sigma`` floors from ``history``, per span path and quality key.

    A path or key needs at least two history samples to learn from;
    anything rarer keeps the caller's fixed policy.  Deterministic
    quality metrics (sigma exactly zero across the history) get a zero
    margin: under the repo's determinism contract any change to them is
    a real change, so the gate is exact-match.
    """
    records = list(history)
    span_samples: Dict[str, List[float]] = {}
    for record in records:
        for path, timing in record.span_times().items():
            span_samples.setdefault(path, []).append(timing.total_s)
    span_floor = {
        path: max(k * robust_stats(samples).sigma, MIN_SPAN_FLOOR_S)
        for path, samples in sorted(span_samples.items())
        if len(samples) >= 2
    }
    quality_margin: Dict[str, float] = {}
    for name, series in extract_series(records).items():
        if not name.startswith("quality.") or len(series.values) < 2:
            continue
        key = name[len("quality."):]
        quality_margin[key] = k * robust_stats(series.values).sigma
    return AdaptiveFloors(
        span_floor_s=span_floor,
        quality_margin=quality_margin,
        k=k,
        n_history=len(records),
    )


# -- SLO budgets --------------------------------------------------------------

@dataclass(frozen=True)
class SLO:
    """One declared per-metric service-level objective."""

    #: Series name the objective applies to (``quality.epe_rms_nm``).
    metric: str
    objective: float
    #: ``"below"``: values must stay <= objective; ``"above"``: >=.
    direction: str = "below"
    #: Burn window: the most recent N runs of the group.
    window: int = 10
    #: Fraction of window runs allowed to violate before a breach.
    budget: float = 0.0

    def violated_by(self, value: float) -> bool:
        if self.direction == "below":
            return value > self.objective + 1e-12
        return value < self.objective - 1e-12

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "objective": self.objective,
            "direction": self.direction,
            "window": self.window,
            "budget": self.budget,
        }


@dataclass(frozen=True)
class SLOStatus:
    """One SLO evaluated over a run group's burn window."""

    slo: SLO
    #: Runs examined -- ``min(window, series length)``; 0 = no data.
    checked: int
    violations: int
    latest_value: Optional[float]

    @property
    def burn(self) -> float:
        return self.violations / self.checked if self.checked else 0.0

    @property
    def latest_ok(self) -> Optional[bool]:
        if self.latest_value is None:
            return None
        return not self.slo.violated_by(self.latest_value)

    @property
    def breached(self) -> bool:
        return self.checked > 0 and self.burn > self.slo.budget + 1e-12

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo.to_dict(),
            "checked": self.checked,
            "violations": self.violations,
            "burn": self.burn,
            "latest_value": self.latest_value,
            "latest_ok": self.latest_ok,
            "breached": self.breached,
        }


def evaluate_slo(slo: SLO, series: Optional[MetricSeries]) -> SLOStatus:
    """``slo`` applied to the last ``window`` values of ``series``."""
    if series is None or not series.values:
        return SLOStatus(slo=slo, checked=0, violations=0, latest_value=None)
    window = list(series.values[-slo.window:])
    violations = sum(1 for value in window if slo.violated_by(value))
    return SLOStatus(
        slo=slo,
        checked=len(window),
        violations=violations,
        latest_value=window[-1],
    )


def _parse_minimal_toml(text: str) -> Dict[str, Any]:
    """A TOML subset parser for SLO tables on pre-3.11 Pythons.

    Handles ``[dotted.or."quoted.key"]`` table headers and scalar
    ``key = value`` pairs (strings, booleans, ints, floats) -- exactly
    the shape an SLO file uses.  3.11+ goes through :mod:`tomllib`.
    """
    root: Dict[str, Any] = {}
    current = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = root
            for key in _split_dotted(line[1:-1]):
                nested = current.setdefault(key, {})
                if not isinstance(nested, dict):
                    raise ReproError(
                        f"TOML line {lineno}: table {key!r} collides with "
                        "a scalar value"
                    )
                current = nested
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise ReproError(
                f"cannot parse TOML line {lineno}: {raw!r} (the built-in "
                "subset parser handles tables and scalar assignments only)"
            )
        current[_unquote(key.strip())] = _toml_scalar(value.strip(), lineno)
    return root


def _split_dotted(header: str) -> List[str]:
    parts: List[str] = []
    buf: List[str] = []
    quote: Optional[str] = None
    for char in header:
        if quote is not None:
            if char == quote:
                quote = None
            else:
                buf.append(char)
        elif char in ("'", '"'):
            quote = char
        elif char == ".":
            parts.append("".join(buf).strip())
            buf = []
        else:
            buf.append(char)
    parts.append("".join(buf).strip())
    return parts


def _unquote(key: str) -> str:
    if len(key) >= 2 and key[0] == key[-1] and key[0] in ("'", '"'):
        return key[1:-1]
    return key


def _toml_scalar(text: str, lineno: int) -> Any:
    if text[:1] not in ("'", '"') and "#" in text:
        text = text.split("#", 1)[0].strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ReproError(
            f"cannot parse TOML value on line {lineno}: {text!r}"
        ) from None


def _load_toml(path: Path) -> Dict[str, Any]:
    try:
        import tomllib
    except ModuleNotFoundError:  # Python < 3.11
        return _parse_minimal_toml(path.read_text(encoding="utf-8"))
    with open(path, "rb") as handle:
        return tomllib.load(handle)


def _slo_from_table(metric: str, table: Any) -> SLO:
    if not isinstance(table, dict):
        raise ReproError(f"SLO {metric!r} must be a table, got {table!r}")
    unknown = set(table) - _SLO_KEYS
    if unknown:
        raise ReproError(
            f"SLO {metric!r} has unknown key(s): {', '.join(sorted(unknown))}"
        )
    objective = table.get("objective")
    if not isinstance(objective, (int, float)) or isinstance(objective, bool):
        raise ReproError(f"SLO {metric!r} needs a numeric 'objective'")
    direction = table.get("direction", "below")
    if direction not in ("below", "above"):
        raise ReproError(
            f"SLO {metric!r} direction must be 'below' or 'above', "
            f"got {direction!r}"
        )
    window = table.get("window", 10)
    if not isinstance(window, int) or isinstance(window, bool) or window < 1:
        raise ReproError(f"SLO {metric!r} window must be a positive integer")
    budget = table.get("budget", 0.0)
    if (
        not isinstance(budget, (int, float))
        or isinstance(budget, bool)
        or not 0.0 <= float(budget) < 1.0
    ):
        raise ReproError(f"SLO {metric!r} budget must be in [0, 1)")
    return SLO(
        metric=metric,
        objective=float(objective),
        direction=direction,
        window=window,
        budget=float(budget),
    )


def load_slos(path: Optional[Union[str, Path]] = None) -> Dict[str, SLO]:
    """Declared SLO budgets, keyed by metric series name.

    With an explicit ``path`` the file must exist.  Otherwise
    ``./repro-slo.toml`` is tried first, then ``pyproject.toml``'s
    ``[tool.repro.slo]`` table; no file and no table means no SLOs
    (empty dict), never an error.
    """
    if path is None:
        for candidate in (Path(SLO_FILE), Path("pyproject.toml")):
            if candidate.exists():
                slos = load_slos(candidate)
                if slos:
                    return slos
        return {}
    file_path = Path(path)
    if not file_path.exists():
        raise ReproError(f"SLO file {file_path} not found")
    data = _load_toml(file_path)
    table = data.get("tool", {}).get("repro", {}).get("slo")
    if table is None:
        if file_path.name == "pyproject.toml":
            return {}
        # Standalone file: every top-level table is one SLO.
        table = {k: v for k, v in data.items() if isinstance(v, dict)}
    return {
        metric: _slo_from_table(metric, table[metric])
        for metric in sorted(table)
    }


# -- trend analysis -----------------------------------------------------------

@dataclass(frozen=True)
class SeriesAnalysis:
    """Everything :func:`analyze_records` learned about one series."""

    series: MetricSeries
    stats: RobustStats
    flaky_score: float
    change_points: Tuple[ChangePoint, ...]

    @property
    def latest(self) -> float:
        return self.series.values[-1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.series.name,
            "run_ids": list(self.series.run_ids),
            "values": list(self.series.values),
            "latest": self.latest,
            "median": self.stats.median,
            "sigma": self.stats.sigma,
            "flaky_score": (
                self.flaky_score if math.isfinite(self.flaky_score) else None
            ),
            "change_points": [cp.to_dict() for cp in self.change_points],
        }


@dataclass
class AnalyzeReport:
    """The full trend report over one same-fingerprint run group."""

    fingerprint: str
    run_ids: List[str]
    analyses: Dict[str, SeriesAnalysis]
    slo_statuses: List[SLOStatus]
    flaky_threshold: float
    notes: List[str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "run_ids": list(self.run_ids),
            "flaky_threshold": self.flaky_threshold,
            "series": {
                name: analysis.to_dict()
                for name, analysis in sorted(self.analyses.items())
            },
            "slos": [status.to_dict() for status in self.slo_statuses],
            "notes": list(self.notes),
        }


def analyze_records(
    records: Sequence[RunRecord],
    metrics: Optional[Sequence[str]] = None,
    slos: Optional[Mapping[str, SLO]] = None,
    cusum_k: float = DEFAULT_CUSUM_K,
    cusum_h: float = DEFAULT_CUSUM_H,
    flaky_threshold: float = DEFAULT_FLAKY_THRESHOLD,
) -> AnalyzeReport:
    """Robust stats, change points, flaky scores and SLO burn for a group.

    ``records`` is a run group in append order; runs whose fingerprint
    differs from the newest run's are dropped with a note, so mixed
    ledgers analyze without error.  ``metrics`` restricts the analyzed
    series (SLOs are always evaluated on the full extraction).
    """
    rows = list(records)
    if not rows:
        raise ReproError("runs analyze needs at least one recorded run")
    fingerprint = rows[-1].fingerprint
    group = [r for r in rows if r.fingerprint == fingerprint]
    notes: List[str] = []
    if len(group) != len(rows):
        notes.append(
            f"ignored {len(rows) - len(group)} run(s) with other "
            f"fingerprints; analyzing group {fingerprint}"
        )
    if len(group) < MIN_SERIES_LEN:
        notes.append(
            f"only {len(group)} run(s) in group {fingerprint}; change-point "
            f"detection needs at least {MIN_SERIES_LEN}"
        )
    all_series = extract_series(group)
    if metrics is not None:
        for name in sorted(set(metrics) - set(all_series)):
            notes.append(f"metric {name!r} not found in this run group")
    analyses: Dict[str, SeriesAnalysis] = {}
    for name in sorted(all_series):
        if metrics is not None and name not in metrics:
            continue
        series = all_series[name]
        analyses[name] = SeriesAnalysis(
            series=series,
            stats=robust_stats(series.values),
            flaky_score=flakiness(series.values),
            change_points=tuple(
                cusum_changepoints(series.values, cusum_k, cusum_h)
            ),
        )
    slo_statuses = [
        evaluate_slo(slos[name], all_series.get(name))
        for name in sorted(slos or {})
    ]
    return AnalyzeReport(
        fingerprint=fingerprint,
        run_ids=[r.run_id for r in group],
        analyses=analyses,
        slo_statuses=slo_statuses,
        flaky_threshold=flaky_threshold,
        notes=notes,
    )


_SPARK_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode bar sparkline of ``values`` (one character per run)."""
    if not values:
        return ""
    low, high = min(values), max(values)
    spread = (high - low) or 1.0
    return "".join(
        _SPARK_BARS[
            min(int((v - low) / spread * len(_SPARK_BARS)), len(_SPARK_BARS) - 1)
        ]
        for v in values
    )


def _fmt_num(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return f"{value:.6g}"


def _fmt_changepoints(analysis: SeriesAnalysis) -> str:
    if not analysis.change_points:
        return "-"
    cells = []
    for cp in analysis.change_points:
        shift = (
            f"{cp.pct:+.1f}%" if cp.pct is not None
            else f"{cp.magnitude:+.6g}"
        )
        cells.append(f"#{cp.index + 1} {shift}")
    return "; ".join(cells)


def report_markdown(report: AnalyzeReport) -> str:
    """The ``repro runs analyze`` trend report (markdown + sparklines)."""
    lines = [
        f"## run trend: fingerprint {report.fingerprint} "
        f"({len(report.run_ids)} runs, oldest -> newest)",
        "",
        "| metric | latest | median | sigma | flaky | trend | change points |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, analysis in sorted(report.analyses.items()):
        flaky = _fmt_num(analysis.flaky_score)
        if analysis.flaky_score >= report.flaky_threshold:
            flaky += " !"
        lines.append(
            f"| {name} | {_fmt_num(analysis.latest)} "
            f"| {_fmt_num(analysis.stats.median)} "
            f"| {_fmt_num(analysis.stats.sigma)} | {flaky} "
            f"| {sparkline(analysis.series.values)} "
            f"| {_fmt_changepoints(analysis)} |"
        )
    shifts = [
        (name, cp)
        for name, analysis in sorted(report.analyses.items())
        for cp in analysis.change_points
    ]
    if shifts:
        lines += ["", "### change points", ""]
        for name, cp in shifts:
            run_id = (
                report.run_ids[cp.index]
                if cp.index < len(report.run_ids) else "?"
            )
            shift = f", {cp.pct:+.1f}%" if cp.pct is not None else ""
            lines.append(
                f"- {name}: run #{cp.index + 1} ({run_id}) {cp.direction} "
                f"{_fmt_num(cp.before)} -> {_fmt_num(cp.after)}"
                f"{shift} (score {cp.score:.1f} sigma)"
            )
    if report.slo_statuses:
        lines += [
            "", "### SLO budgets", "",
            "| metric | objective | window | violations | burn | budget "
            "| verdict |",
            "|---|---|---|---|---|---|---|",
        ]
        for status in report.slo_statuses:
            slo = status.slo
            if status.checked == 0:
                verdict = "(no data)"
            elif status.breached:
                verdict = "BREACH"
            else:
                verdict = "ok"
            objective = (
                f"{'<=' if slo.direction == 'below' else '>='} "
                f"{_fmt_num(slo.objective)}"
            )
            lines.append(
                f"| {slo.metric} | {objective} | {slo.window} "
                f"| {status.violations}/{status.checked} "
                f"| {status.burn:.0%} | {slo.budget:.0%} | {verdict} |"
            )
    for note in report.notes:
        lines.append(f"\nnote: {note}")
    return "\n".join(lines)


# -- the gate -----------------------------------------------------------------

def gate(
    candidate: RunRecord,
    baselines: Sequence[RunRecord],
    history: Optional[Sequence[RunRecord]] = None,
    policy: RegressionPolicy = RegressionPolicy(),
    adaptive: bool = False,
    slos: Optional[Mapping[str, SLO]] = None,
    flaky_threshold: float = DEFAULT_FLAKY_THRESHOLD,
    floor_k: float = DEFAULT_FLOOR_K,
) -> RegressionReport:
    """Gate ``candidate``: plain or adaptive thresholds plus SLO verdicts.

    ``baselines`` feed the median comparison exactly as in
    :func:`~repro.obs.runs.check_regressions`; ``history`` (default: the
    baselines) is the deeper same-fingerprint record list that adaptive
    floors, flaky scores and SLO burn windows learn from.  With
    ``adaptive`` the hand-tuned ``abs_floor_s`` / ``quality_rel_threshold``
    are replaced by ``floor_k * sigma`` margins learned per span path and
    quality key, and quality keys flakier than ``flaky_threshold`` demote
    from FAIL to WARN.  SLO breaches (budget burned through inside the
    declared window, candidate included) append ``slo``-kind regressions.
    """
    past = list(history) if history is not None else list(baselines)
    span_floors: Mapping[str, float] = {}
    quality_margins: Mapping[str, float] = {}
    flaky: Collection[str] = ()
    if adaptive and past:
        floors = learn_floors(past, k=floor_k)
        span_floors = floors.span_floor_s
        quality_margins = floors.quality_margin
        flaky = sorted(
            name[len("quality."):]
            for name, series in extract_series(past).items()
            if name.startswith("quality.")
            and len(series.values) >= MIN_SERIES_LEN
            and flakiness(series.values) >= flaky_threshold
        )
    report = check_regressions(
        candidate,
        baselines,
        policy,
        span_floors=span_floors,
        quality_margins=quality_margins,
        flaky=flaky,
    )
    if adaptive:
        report.notes.append(
            f"adaptive floors learned from {len(past)} run(s) "
            f"(k={floor_k:g} sigma)"
        )
        if flaky:
            report.notes.append(
                "flaky (WARN-only) quality key(s): " + ", ".join(flaky)
            )
    for name in sorted(slos or {}):
        slo = slos[name]
        rows = list(past)
        if all(r.run_id != candidate.run_id for r in rows):
            rows.append(candidate)
        status = evaluate_slo(slo, extract_series(rows).get(name))
        if status.checked == 0:
            report.notes.append(f"SLO {name}: no data in this run group")
            continue
        report.checked_slos += 1
        detail = (
            f"burn {status.violations}/{status.checked} within window "
            f"{slo.window} vs budget {slo.budget:g} "
            f"(objective {'<=' if slo.direction == 'below' else '>='} "
            f"{slo.objective:g})"
        )
        finding = Regression(
            kind="slo",
            key=name,
            baseline=slo.objective,
            candidate=(
                status.latest_value if status.latest_value is not None else 0.0
            ),
            detail=detail,
            severity="fail" if status.breached else "warn",
        )
        if status.breached:
            report.regressions.append(finding)
        elif status.latest_ok is False:
            report.warnings.append(finding)
    return report
