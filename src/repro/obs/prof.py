"""Span-attributed sampling profiler with memory telemetry.

Spans say *that* ``tapeout.correct`` took 40 s; this module says *why*:
a background thread samples every Python stack at a configurable rate
(``sys._current_frames``, stdlib only) and tags each sample with the
span path that was open on the sampled thread
(:func:`repro.obs.trace.open_span_paths`), so collapsed stacks read ::

    tapeout/tapeout.correct/...;model_opc.py:step;simulator.py:aerial_image  172

Alongside the stacks the sampler keeps three cheap aggregates:

* ``cpu_s`` / ``wall_s`` per top-level span -- rusage CPU-time deltas
  and wall deltas attributed to the open root span at each tick, the
  CPU-vs-wait split a wall-clock span tree cannot show.
* the process RSS high-water mark, polled with the same
  ``resource``/``/proc`` reader the events bus uses for its
  ``worker.resource`` samples.
* optional per-phase ``tracemalloc`` top-N allocation sites, collected
  by a :class:`~repro.obs.events.CallbackSink` listening for the bus's
  ``phase.end`` events.

Profiles cross the process boundary like span trees do: each pool
worker in :mod:`repro.opc.parallel` records its own
:class:`Profile`, ships it back on the :class:`~repro.opc.parallel.TileOutcome`,
and the parent folds them in with the deterministic
:func:`merge_profiles` -- the same contract as
:func:`~repro.obs.trace.merge_spans`.  Exports are stdlib-only:
Brendan-Gregg collapsed-stack text plus a self-contained flame-graph
SVG/HTML (``repro profile --flame``).

``REPRO_PROF=0`` is the kill switch (the profiler goes fully inert);
``REPRO_PROF_HZ`` overrides the default sampling rate.
"""

from __future__ import annotations

import json
import math
import os
import sys
import threading
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Union

from . import trace as _trace
from .events import CallbackSink, _cpu_seconds_and_rss, bus as _event_bus

#: Version stamp of the serialized-profile schema.
PROF_SCHEMA = "repro-prof/1"

#: Kill switch: set to ``0`` to make every profiler inert.
PROF_ENV = "REPRO_PROF"

#: Override of the default sampling rate (samples per second).
PROF_HZ_ENV = "REPRO_PROF_HZ"

#: Default sampling rate.  A prime-ish rate avoids phase-locking with
#: periodic work (tile cadence, event-sink flush intervals), and the
#: value is low enough that each wake's GIL handoff stays under the 5%
#: wall-time budget even on a single-core CI runner
#: (``bench_obs_overhead.py`` holds the line).
DEFAULT_HZ = 47.0

#: Span tag of samples taken while no span was open on the thread.
NO_SPAN = "(no span)"

#: Frames kept per sample, root-first; deeper stacks are truncated.
MAX_STACK_DEPTH = 64


def prof_enabled() -> bool:
    """Whether sampling profilers may run (``REPRO_PROF=0`` disables)."""
    return os.environ.get(PROF_ENV, "1").strip().lower() not in ("0", "false", "off")


def default_hz() -> float:
    """The configured sampling rate (``REPRO_PROF_HZ`` or the default)."""
    try:
        hz = float(os.environ.get(PROF_HZ_ENV, ""))
    except ValueError:
        return DEFAULT_HZ
    return hz if hz > 0 else DEFAULT_HZ


class Profile:
    """One process's (or one tile's) sampled profile.

    ``samples`` maps a collapsed stack -- ``;``-joined frames whose first
    segment is the span path open at sample time -- to its sample count.
    ``cpu_s`` / ``wall_s`` map each top-level span name to the CPU and
    wall seconds attributed to it.  ``memory`` holds the per-phase
    tracemalloc digests, when memory telemetry ran.
    """

    __slots__ = (
        "hz", "samples", "cpu_s", "wall_s", "sample_count",
        "peak_rss_bytes", "memory",
    )

    def __init__(self, hz: float = DEFAULT_HZ):
        self.hz = float(hz)
        self.samples: Dict[str, int] = {}
        self.cpu_s: Dict[str, float] = {}
        self.wall_s: Dict[str, float] = {}
        self.sample_count = 0
        self.peak_rss_bytes = 0
        self.memory: List[Dict[str, Any]] = []

    @property
    def cpu_total_s(self) -> float:
        """CPU seconds across every top-level span (order-independent)."""
        return math.fsum(self.cpu_s.values())

    @property
    def wall_total_s(self) -> float:
        """Sampled wall seconds across every top-level span."""
        return math.fsum(self.wall_s.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Profile({self.sample_count} samples @ {self.hz:g} Hz, "
            f"cpu {self.cpu_total_s:.3f} s)"
        )


def profile_to_dict(profile: Profile) -> Dict[str, Any]:
    """``profile`` as plain JSON-ready data (sorted, deterministic)."""
    return {
        "schema": PROF_SCHEMA,
        "hz": profile.hz,
        "sample_count": profile.sample_count,
        "peak_rss_bytes": profile.peak_rss_bytes,
        "samples": {key: profile.samples[key] for key in sorted(profile.samples)},
        "cpu_s": {key: round(profile.cpu_s[key], 6) for key in sorted(profile.cpu_s)},
        "wall_s": {key: round(profile.wall_s[key], 6) for key in sorted(profile.wall_s)},
        "memory": list(profile.memory),
    }


def profile_from_dict(data: Dict[str, Any]) -> Profile:
    """Rebuild a :class:`Profile` from :func:`profile_to_dict` output."""
    if data.get("schema") != PROF_SCHEMA:
        from ..errors import ReproError

        raise ReproError(
            f"unsupported profile schema {data.get('schema')!r} "
            f"(expected {PROF_SCHEMA})"
        )
    profile = Profile(float(data.get("hz", DEFAULT_HZ)))
    profile.sample_count = int(data.get("sample_count", 0))
    profile.peak_rss_bytes = int(data.get("peak_rss_bytes", 0))
    profile.samples = {str(k): int(v) for k, v in (data.get("samples") or {}).items()}
    profile.cpu_s = {str(k): float(v) for k, v in (data.get("cpu_s") or {}).items()}
    profile.wall_s = {str(k): float(v) for k, v in (data.get("wall_s") or {}).items()}
    profile.memory = list(data.get("memory") or [])
    return profile


def merge_profiles(
    parent: Profile,
    profiles: Sequence[Profile],
    prefix: Optional[str] = None,
) -> Profile:
    """Fold worker profiles into ``parent`` in place; returns ``parent``.

    The same contract as :func:`~repro.obs.trace.merge_spans`: one call
    folds every child at once, and the result is a deterministic function
    of the *set* of profiles -- independent of drain order.  Sample
    counts are integer sums; CPU/wall seconds are folded per key with
    ``math.fsum`` (correctly rounded, hence order-independent); the RSS
    high-water is a max; memory digests are concatenated in sorted
    serialized order.

    ``prefix`` grafts the children under a parent span path, mirroring
    how worker span trees land under ``opc.parallel``: each child
    sample's span tag gains the prefix, and the children's per-root
    ``cpu_s``/``wall_s`` fold into the single ``prefix`` key (all worker
    CPU happened inside that parent span).
    """
    def tag(stack_key: str) -> str:
        if prefix is None:
            return stack_key
        span_tag, sep, frames = stack_key.partition(";")
        span_tag = prefix if span_tag == NO_SPAN else f"{prefix}/{span_tag}"
        return span_tag + sep + frames

    counts: Dict[str, List[int]] = {}
    cpu: Dict[str, List[float]] = {}
    wall: Dict[str, List[float]] = {}
    for key, value in parent.samples.items():
        counts.setdefault(key, []).append(value)
    for key, value in parent.cpu_s.items():
        cpu.setdefault(key, []).append(value)
    for key, value in parent.wall_s.items():
        wall.setdefault(key, []).append(value)
    extra_memory: List[Dict[str, Any]] = []
    for child in profiles:
        for key, value in child.samples.items():
            counts.setdefault(tag(key), []).append(value)
        for key, value in child.cpu_s.items():
            cpu.setdefault(prefix if prefix is not None else key, []).append(value)
        for key, value in child.wall_s.items():
            wall.setdefault(prefix if prefix is not None else key, []).append(value)
        parent.sample_count += child.sample_count
        parent.peak_rss_bytes = max(parent.peak_rss_bytes, child.peak_rss_bytes)
        extra_memory.extend(child.memory)
    parent.samples = {key: sum(values) for key, values in counts.items()}
    parent.cpu_s = {key: math.fsum(values) for key, values in cpu.items()}
    parent.wall_s = {key: math.fsum(values) for key, values in wall.items()}
    parent.memory.extend(
        sorted(extra_memory, key=lambda entry: json.dumps(entry, sort_keys=True))
    )
    return parent


# -- the sampler ---------------------------------------------------------------

class SamplingProfiler:
    """Low-overhead background stack sampler for this process.

    Use as a context manager (or ``start()``/``stop()``) around the work
    to profile::

        with SamplingProfiler(hz=97) as profiler:
            tapeout_region(...)
        print(collapsed_text(profiler.profile))

    The sampler thread wakes ``hz`` times a second, reads every thread's
    current frame stack, tags each with the thread's open span path, and
    attributes the tick's CPU/wall deltas to the open top-level spans.
    When ``REPRO_PROF=0`` (or ``hz <= 0``) the profiler is fully inert:
    no thread starts and the profile stays empty.

    ``memory=True`` additionally starts ``tracemalloc`` and records the
    top-``top_n`` allocation sites of every pipeline phase (via the
    event bus's ``phase.end`` events) plus the tracemalloc peak, at
    tracemalloc's usual 2-4x slowdown -- a diagnosis mode, not an
    always-on one.
    """

    def __init__(
        self,
        hz: Optional[float] = None,
        memory: bool = False,
        top_n: int = 5,
    ):
        self.hz = float(hz) if hz is not None and hz > 0 else default_hz()
        self.memory = memory
        self.top_n = top_n
        self.profile = Profile(self.hz)
        self.running = False
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._memory_sink: Optional[CallbackSink] = None
        self._last_wall: Optional[float] = None
        self._last_cpu: Optional[float] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Start sampling (a no-op when ``REPRO_PROF=0`` disables it)."""
        global _active_profiler
        if self.running or not prof_enabled():
            return self
        self.running = True
        _active_profiler = self
        self._stop_event.clear()
        cpu_s, rss = _cpu_seconds_and_rss()
        self._last_cpu = cpu_s
        self._last_wall = perf_counter()
        self.profile.peak_rss_bytes = max(self.profile.peak_rss_bytes, rss)
        if self.memory:
            self._start_memory()
        self._thread = threading.Thread(
            target=self._loop, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        """Stop sampling and return the (still mutable) profile."""
        global _active_profiler
        if not self.running:
            return self.profile
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._memory_sink is not None:
            self._stop_memory()
        self.running = False
        if _active_profiler is self:
            _active_profiler = None
        return self.profile

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------------

    def _loop(self) -> None:
        interval = 1.0 / self.hz
        ident = threading.get_ident()
        while not self._stop_event.wait(interval):
            self._tick(ident)
        self._tick(ident)  # final partial tick so short runs register

    def _tick(self, sampler_ident: int) -> None:
        now = perf_counter()
        cpu_s, rss = _cpu_seconds_and_rss()
        frames = sys._current_frames()
        span_paths = _trace.open_span_paths()
        with self._lock:
            profile = self.profile
            profile.peak_rss_bytes = max(profile.peak_rss_bytes, rss)
            roots: List[str] = []
            for ident, frame in frames.items():
                if ident == sampler_ident:
                    continue
                path = span_paths.get(ident, NO_SPAN)
                stack = [path] + _format_stack(frame)
                key = ";".join(stack)
                profile.samples[key] = profile.samples.get(key, 0) + 1
                profile.sample_count += 1
                root = path.split("/", 1)[0]
                if root not in roots:
                    roots.append(root)
            if roots and self._last_wall is not None:
                wall_delta = max(now - self._last_wall, 0.0)
                cpu_delta = max(cpu_s - (self._last_cpu or 0.0), 0.0)
                share = 1.0 / len(roots)
                for root in roots:
                    profile.wall_s[root] = (
                        profile.wall_s.get(root, 0.0) + wall_delta * share
                    )
                    profile.cpu_s[root] = (
                        profile.cpu_s.get(root, 0.0) + cpu_delta * share
                    )
            self._last_wall = now
            self._last_cpu = cpu_s

    # -- memory telemetry -----------------------------------------------------

    def _start_memory(self) -> None:
        import tracemalloc

        tracemalloc.start()
        self._memory_sink = _event_bus().attach(CallbackSink(self._on_event))

    def _stop_memory(self) -> None:
        import tracemalloc

        _event_bus().detach(self._memory_sink)
        self._memory_sink = None
        if tracemalloc.is_tracing():
            with self._lock:
                self.profile.memory.append(self._memory_entry("(run)"))
            tracemalloc.stop()

    def _on_event(self, event: Dict[str, Any]) -> None:
        if event.get("type") != "phase.end":
            return
        import tracemalloc

        if not tracemalloc.is_tracing():
            return
        phase = (event.get("data") or {}).get("name") or "(phase)"
        with self._lock:
            self.profile.memory.append(self._memory_entry(phase))
        tracemalloc.reset_peak()

    def _memory_entry(self, phase: str) -> Dict[str, Any]:
        import tracemalloc

        current, peak = tracemalloc.get_traced_memory()
        top = tracemalloc.take_snapshot().statistics("lineno")[: self.top_n]
        return {
            "phase": phase,
            "current_bytes": int(current),
            "peak_bytes": int(peak),
            "top_sites": [
                {
                    "site": f"{os.path.basename(stat.traceback[0].filename)}"
                    f":{stat.traceback[0].lineno}",
                    "bytes": int(stat.size),
                    "count": int(stat.count),
                }
                for stat in top
            ],
        }

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A consistent :func:`profile_to_dict` view, safe while running."""
        with self._lock:
            return profile_to_dict(self.profile)


def _format_stack(frame: Any) -> List[str]:
    """Root-first ``file.py:function`` frames of one thread's stack."""
    frames: List[str] = []
    while frame is not None and len(frames) < MAX_STACK_DEPTH:
        code = frame.f_code
        frames.append(f"{os.path.basename(code.co_filename)}:{code.co_name}")
        frame = frame.f_back
    frames.reverse()
    return frames


# -- the active profiler (pool propagation hook) -------------------------------

_active_profiler: Optional[SamplingProfiler] = None


def active_profiler() -> Optional[SamplingProfiler]:
    """The profiler currently sampling this process, if any."""
    return _active_profiler


def active_hz() -> float:
    """Sampling rate workers should inherit (0.0 = profiling is off)."""
    profiler = _active_profiler
    return profiler.hz if profiler is not None and profiler.running else 0.0


def absorb_worker_profiles(
    documents: Sequence[Dict[str, Any]],
    prefix: str = "opc.parallel",
) -> None:
    """Merge worker profile dicts into the active profiler, when there is one.

    The parent-side half of the pool contract: workers ship
    :func:`profile_to_dict` documents on their tile outcomes, and the
    pool hands them (in deterministic tile order) to this hook.  With no
    profiler active the documents are dropped -- the parent did not ask
    for profiling, so there is nothing to fold them into.
    """
    profiler = _active_profiler
    if profiler is None or not documents:
        return
    children = [profile_from_dict(doc) for doc in documents]
    with profiler._lock:
        merge_profiles(profiler.profile, children, prefix=prefix)


def active_summary(top: int = 10) -> Optional[Dict[str, Any]]:
    """The :func:`profile_summary` of the active profiler, or ``None``.

    Safe to call while sampling is still running (the flows use this to
    stamp auto-recorded ledger runs); the summary reflects everything
    sampled so far.
    """
    profiler = _active_profiler
    if profiler is None:
        return None
    return profile_summary(profile_from_dict(profiler.snapshot()), top=top)


# -- summaries & exports -------------------------------------------------------

def profile_summary(profile: Profile, top: int = 10) -> Dict[str, Any]:
    """The compact ledger payload: top frames, per-span CPU/wall, peak RSS.

    This is what a ``repro-run/1.4`` record stores under ``profile`` --
    small enough to live on every ledger line while still letting
    ``repro runs diff``/``check`` gate on CPU time and peak memory.
    """
    leaf_counts: Dict[str, int] = {}
    for stack_key, count in profile.samples.items():
        leaf = stack_key.rsplit(";", 1)[-1]
        leaf_counts[leaf] = leaf_counts.get(leaf, 0) + count
    top_frames = sorted(leaf_counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    return {
        "schema": PROF_SCHEMA,
        "hz": profile.hz,
        "sample_count": profile.sample_count,
        "peak_rss_bytes": profile.peak_rss_bytes,
        "cpu_s": {key: round(profile.cpu_s[key], 6) for key in sorted(profile.cpu_s)},
        "wall_s": {key: round(profile.wall_s[key], 6) for key in sorted(profile.wall_s)},
        "cpu_total_s": round(profile.cpu_total_s, 6),
        "top_frames": [[frame, count] for frame, count in top_frames],
        "memory": list(profile.memory),
    }


def collapsed_text(profile: Profile) -> str:
    """Brendan-Gregg collapsed-stack text: ``frame;frame;leaf count``.

    One line per distinct stack, lexicographically sorted (deterministic
    for a given profile), first frame is the span path the sample was
    attributed to.  Feed it to any flame-graph tool, or to
    :func:`flame_svg`.
    """
    return "\n".join(
        f"{stack} {profile.samples[stack]}" for stack in sorted(profile.samples)
    )


def write_collapsed(path: Union[str, os.PathLike], profile: Profile) -> None:
    """Write :func:`collapsed_text` (with a trailing newline) to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        text = collapsed_text(profile)
        handle.write(text + "\n" if text else "")


# -- flame graph (stdlib-only SVG/HTML) ----------------------------------------

_FRAME_HEIGHT = 17
_FLAME_WIDTH = 1100
_MIN_FRAME_PX = 1.2


class _FlameNode:
    __slots__ = ("name", "value", "children")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.children: Dict[str, "_FlameNode"] = {}


def _flame_tree(profile: Profile) -> _FlameNode:
    root = _FlameNode("all")
    for stack_key in sorted(profile.samples):
        count = profile.samples[stack_key]
        root.value += count
        node = root
        for frame in stack_key.split(";"):
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _FlameNode(frame)
            child.value += count
            node = child
    return root


def _frame_color(name: str) -> str:
    """A deterministic warm palette color for one frame name."""
    import hashlib

    digest = hashlib.sha256(name.encode("utf-8")).digest()
    red = 205 + digest[0] % 50
    green = 80 + digest[1] % 110
    blue = digest[2] % 55
    return f"rgb({red},{green},{blue})"


def flame_svg(profile: Profile, title: str = "repro flame graph") -> str:
    """A self-contained flame-graph SVG of the profile's collapsed stacks.

    Stdlib only, no scripts, no external assets: rect width is the
    sample share, depth is stack depth, siblings are laid out in sorted
    name order so the same profile always renders byte-identically.
    Hover titles carry the full frame name, sample count and share.
    """
    import html as _html

    root = _flame_tree(profile)
    total = root.value
    rows: List[str] = []
    max_depth = 0

    def layout(node: _FlameNode, x: float, width: float, depth: int) -> None:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        if width >= _MIN_FRAME_PX and depth >= 0:
            share = 100.0 * node.value / total if total else 0.0
            label = _html.escape(node.name)
            text = ""
            if width > 60:
                shown = node.name
                limit = max(int(width / 6.5), 1)
                if len(shown) > limit:
                    shown = shown[: max(limit - 2, 1)] + ".."
                text = (
                    f'<text x="{x + 2:.1f}" y="{depth * _FRAME_HEIGHT + 12}" '
                    f'font-size="11" font-family="monospace">'
                    f"{_html.escape(shown)}</text>"
                )
            rows.append(
                f'<g><rect x="{x:.1f}" y="{depth * _FRAME_HEIGHT + 1}" '
                f'width="{max(width - 0.5, 0.5):.1f}" height="{_FRAME_HEIGHT - 2}" '
                f'fill="{_frame_color(node.name)}" rx="1">'
                f"<title>{label}: {node.value} sample(s), {share:.1f}%</title>"
                f"</rect>{text}</g>"
            )
        child_x = x
        for name in sorted(node.children):
            child = node.children[name]
            child_width = width * child.value / node.value if node.value else 0.0
            layout(child, child_x, child_width, depth + 1)
            child_x += child_width

    if total:
        layout(root, 0.0, float(_FLAME_WIDTH), 0)
    height = (max_depth + 1) * _FRAME_HEIGHT + 30
    header = (
        f'<text x="4" y="{height - 10}" font-size="12" '
        f'font-family="sans-serif">{__import__("html").escape(title)}: '
        f"{total} sample(s) @ {profile.hz:g} Hz, "
        f"cpu {profile.cpu_total_s:.3f} s, "
        f"peak rss {profile.peak_rss_bytes // (1024 * 1024)} MiB</text>"
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_FLAME_WIDTH}" '
        f'height="{height}" viewBox="0 0 {_FLAME_WIDTH} {height}">'
        f'<rect width="100%" height="100%" fill="#fafaf8"/>'
        + "".join(rows) + header + "</svg>"
    )


def flame_html(profile: Profile, title: str = "repro flame graph") -> str:
    """A self-contained HTML page: flame SVG plus CPU/wall and memory tables.

    Opens offline like ``repro inspect``'s output -- no scripts, no
    external assets.
    """
    import html as _html

    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title>",
        "<style>body{font-family:ui-sans-serif,system-ui,sans-serif;"
        "margin:2rem;color:#1a1a2e;background:#fafaf8}"
        "table{border-collapse:collapse;font-size:0.85rem}"
        "td,th{padding:0.25rem 0.7rem;border-bottom:1px solid #e0e0dc;"
        "text-align:left}.mono{font-family:ui-monospace,monospace;"
        "font-size:0.8rem}</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
        flame_svg(profile, title=title),
        "<h2>CPU vs wall per top-level span</h2><table>",
        "<tr><th>span</th><th>cpu (s)</th><th>wall (s)</th>"
        "<th>cpu/wall</th></tr>",
    ]
    for root in sorted(set(profile.cpu_s) | set(profile.wall_s)):
        cpu = profile.cpu_s.get(root, 0.0)
        wall = profile.wall_s.get(root, 0.0)
        ratio = f"{cpu / wall:.2f}" if wall > 0 else "-"
        parts.append(
            f"<tr><td class='mono'>{_html.escape(root)}</td>"
            f"<td>{cpu:.3f}</td><td>{wall:.3f}</td><td>{ratio}</td></tr>"
        )
    parts.append("</table>")
    if profile.memory:
        parts.append("<h2>Memory per phase (tracemalloc)</h2><table>")
        parts.append(
            "<tr><th>phase</th><th>peak</th><th>top allocation sites</th></tr>"
        )
        for entry in profile.memory:
            sites = ", ".join(
                f"{site['site']} ({site['bytes'] // 1024} KiB)"
                for site in entry.get("top_sites", [])
            )
            parts.append(
                f"<tr><td class='mono'>{_html.escape(str(entry.get('phase')))}"
                f"</td><td>{int(entry.get('peak_bytes', 0)) // 1024} KiB</td>"
                f"<td class='mono'>{_html.escape(sites)}</td></tr>"
            )
        parts.append("</table>")
    parts.append(
        f"<p class='mono'>peak rss "
        f"{profile.peak_rss_bytes // (1024 * 1024)} MiB; "
        f"{profile.sample_count} sample(s) @ {profile.hz:g} Hz</p>"
    )
    parts.append("</body></html>")
    return "\n".join(parts)


def write_flame_svg(path: Union[str, os.PathLike], profile: Profile,
                    title: str = "repro flame graph") -> None:
    """Write :func:`flame_svg` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(flame_svg(profile, title=title) + "\n")


def write_flame_html(path: Union[str, os.PathLike], profile: Profile,
                     title: str = "repro flame graph") -> None:
    """Write :func:`flame_html` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(flame_html(profile, title=title) + "\n")
