"""OpenMetrics text exposition of the run telemetry.

The monitoring front door: the dotted metric namespace of
:mod:`repro.obs.metrics` (``sim.aerial_calls``, ``tile.runtime_s``,
``quality.epe_rms_nm``) rendered as the OpenMetrics text format any
Prometheus-compatible scraper ingests.

* :func:`openmetrics_name` -- the deterministic name mapping (dots to
  underscores; the dotted names already follow the R005 lint, so the
  mapped names are valid OpenMetrics identifiers by construction).
* :func:`exposition` -- a full payload from a registry snapshot and/or
  a ledger :class:`~repro.obs.runs.RunRecord`, ``# EOF``-terminated.
* :func:`write_textfile` -- atomic textfile-collector export
  (``repro metrics export``).
* :class:`MetricsServer` -- a stdlib :mod:`http.server` ``/metrics``
  endpoint (``repro metrics serve``): live registry while a run is in
  flight, the last ledger record when idle.

Rendering is strictly deterministic -- families sorted by name, no
timestamps, ints rendered as ints -- so two scrapes of the same idle
state are byte-identical, which CI asserts with ``cmp``.
"""

from __future__ import annotations

import math
import os
import tempfile
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ReproError
from .metrics import registry as _global_registry
from .runs import RunRecord, ledger as _ledger

#: Content type of the rendered payload (OpenMetrics 1.0 text format).
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Unit suffixes the repo's metric conventions use (R005); a family name
#: ending in one gets a ``# UNIT`` metadata line.  OpenMetrics requires
#: the declared unit to be a suffix of the family name, so the units are
#: the suffixes themselves (``tile_runtime_s`` -> unit ``s``), not the
#: spelled-out words.
_UNIT_SUFFIXES = {"_s": "s", "_nm": "nm", "_bytes": "bytes"}

def openmetrics_name(dotted: str) -> str:
    """``sim.aerial_calls`` -> ``sim_aerial_calls``.

    The dotted names are lint-enforced to ``[a-z0-9_.]`` with a leading
    letter (R005), so replacing separators is the whole mapping -- no
    lossy sanitisation, and two distinct dotted names can only collide
    if they already differed solely by separator, which R005 forbids.
    """
    return dotted.replace(".", "_").replace("-", "_")


@dataclass(frozen=True)
class Sample:
    """One sample line of a metric family."""

    suffix: str  # "", "_total", "_bucket", "_count", "_sum", "_info"
    labels: Tuple[Tuple[str, str], ...]
    value: Union[int, float]


@dataclass(frozen=True)
class Family:
    """One OpenMetrics metric family (metadata plus samples)."""

    name: str
    type: str  # "counter", "gauge", "histogram", "info"
    help: str
    samples: Tuple[Sample, ...]
    unit: str = ""


def _fmt_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _family_unit(name: str) -> str:
    for suffix, unit in _UNIT_SUFFIXES.items():
        if name.endswith(suffix):
            return unit
    return ""


def _counter_family(dotted: str, value: int) -> Family:
    name = openmetrics_name(dotted)
    if name.endswith("_total"):
        name = name[: -len("_total")]
    return Family(
        name=name,
        type="counter",
        help=f"repro counter {dotted}",
        samples=(Sample("_total", (), value),),
    )


def _gauge_family(dotted: str, value: Union[int, float]) -> Family:
    name = openmetrics_name(dotted)
    return Family(
        name=name,
        type="gauge",
        help=f"repro gauge {dotted}",
        unit=_family_unit(name),
        samples=(Sample("", (), value),),
    )


def _histogram_family(dotted: str, record: Mapping[str, Any]) -> Family:
    name = openmetrics_name(dotted)
    samples: List[Sample] = []
    cumulative = 0
    for entry in record["buckets"]:
        cumulative += entry["count"]
        bound = (
            "+Inf" if entry["le"] == "inf" else _fmt_value(float(entry["le"]))
        )
        samples.append(Sample("_bucket", (("le", bound),), cumulative))
    samples.append(Sample("_count", (), record["count"]))
    samples.append(Sample("_sum", (), record["sum"]))
    return Family(
        name=name,
        type="histogram",
        help=f"repro histogram {dotted}",
        unit=_family_unit(name),
        samples=tuple(samples),
    )


def snapshot_families(snapshot: Mapping[str, Mapping[str, Any]]) -> List[Family]:
    """Families for every metric of a registry :meth:`snapshot`."""
    families: List[Family] = []
    for dotted in sorted(snapshot):
        record = snapshot[dotted]
        kind = record.get("kind")
        if kind == "counter":
            families.append(_counter_family(dotted, record["value"]))
        elif kind == "gauge":
            if record["value"] is not None:
                families.append(_gauge_family(dotted, record["value"]))
        elif kind == "histogram":
            families.append(_histogram_family(dotted, record))
        else:
            raise ReproError(
                f"cannot expose metric {dotted!r} of unknown kind {kind!r}"
            )
    return families


def record_families(record: RunRecord) -> List[Family]:
    """Families for one ledger record: its snapshot, quality and identity.

    Quality keys not already published as ``quality.*`` gauges in the
    snapshot (wall/CPU seconds, RSS, pre-gauge records) are added from
    the quality dict, so an idle scrape still carries the full quality
    surface.  A ``repro_run`` info family labels the payload with the
    run id, fingerprint and label.
    """
    families = snapshot_families(record.metrics)
    seen = {family.name for family in families}
    for key in sorted(record.quality):
        value = record.quality[key]
        if isinstance(value, bool):
            value = int(value)
        elif not isinstance(value, (int, float)):
            continue
        dotted = f"quality.{key}"
        if openmetrics_name(dotted) in seen:
            continue
        families.append(_gauge_family(dotted, value))
    families.append(_gauge_family("run.wall_s", record.wall_s))
    families.append(
        Family(
            name="repro_run",
            type="info",
            help="identity of the exposed run record",
            samples=(
                Sample(
                    "_info",
                    (
                        ("fingerprint", record.fingerprint),
                        ("label", record.label),
                        ("run_id", record.run_id),
                        ("schema", record.schema),
                    ),
                    1,
                ),
            ),
        )
    )
    return families


def render(families: Sequence[Family]) -> str:
    """The OpenMetrics text payload for ``families`` (sorted, ``# EOF``)."""
    lines: List[str] = []
    for family in sorted(families, key=lambda f: f.name):
        lines.append(f"# HELP {family.name} {_escape(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        if family.unit:
            lines.append(f"# UNIT {family.name} {family.unit}")
        for sample in family.samples:
            labels = ""
            if sample.labels:
                labels = "{" + ",".join(
                    f'{key}="{_escape(value)}"'
                    for key, value in sample.labels
                ) + "}"
            lines.append(
                f"{family.name}{sample.suffix}{labels} "
                f"{_fmt_value(sample.value)}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def exposition(
    snapshot: Optional[Mapping[str, Mapping[str, Any]]] = None,
    record: Optional[RunRecord] = None,
    extra_gauges: Optional[Mapping[str, Union[int, float]]] = None,
) -> str:
    """One full OpenMetrics payload.

    ``snapshot`` exposes a live registry dump, ``record`` a ledger run
    (pass one; passing both renders the snapshot plus the record's
    identity info).  ``extra_gauges`` appends flat gauges (dotted names)
    -- the ledger source uses it for store-level signals.  Always valid
    and ``# EOF``-terminated, even with nothing to show.
    """
    families: List[Family] = [
        Family(
            name="repro_up",
            type="gauge",
            help="repro metrics endpoint is alive",
            samples=(Sample("", (), 1),),
        )
    ]
    if snapshot is not None:
        families.extend(snapshot_families(snapshot))
        if record is not None:
            families.extend(
                family for family in record_families(record)
                if family.name == "repro_run"
            )
    elif record is not None:
        families.extend(record_families(record))
    for dotted in sorted(extra_gauges or {}):
        families.append(_gauge_family(dotted, extra_gauges[dotted]))
    return render(families)


def write_textfile(path: Union[str, Path], text: str) -> None:
    """Atomically write ``text`` to ``path`` (textfile-collector style).

    Written via a same-directory temp file and :func:`os.replace` so a
    collector never reads a half-written payload.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}."
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            tmp.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already replaced/removed
            pass
        raise


def ledger_source(
    runs_dir: Optional[Union[str, Path]] = None,
) -> Callable[[], str]:
    """The default payload source: live registry, else last ledger run.

    While a run is in flight the global registry holds its metrics and
    the scrape is live; idle (registry empty), the newest ledger record
    is exposed with a ``repro_ledger_runs`` gauge so dashboards can tell
    the two apart.  A corrupt or empty ledger degrades to the minimal
    payload instead of a scrape error.
    """

    def source() -> str:
        snapshot = _global_registry().snapshot()
        if snapshot:
            return exposition(snapshot=snapshot)
        led = _ledger(runs_dir)
        try:
            entries = led.entries()
            if not entries:
                return exposition(
                    extra_gauges={"repro_ledger_runs": 0}
                )
            record = led.load_entry(entries[-1])
        except ReproError:
            return exposition(extra_gauges={"repro_ledger_error": 1})
        return exposition(
            record=record,
            extra_gauges={"repro_ledger_runs": len(entries)},
        )

    return source


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            body = b"repro metrics: scrape /metrics\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        payload = self.server.source().encode("utf-8")  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *args: Any) -> None:  # pragma: no cover - quiet
        pass


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    source: Callable[[], str] = staticmethod(lambda: exposition())


class MetricsServer:
    """A ``/metrics`` HTTP endpoint over the stdlib http server.

    ``source`` produces the payload per scrape (default:
    :func:`ledger_source`).  ``port=0`` binds an ephemeral port (tests);
    :attr:`address` reports the bound one.  Use as a context manager, or
    :meth:`serve_forever` to block (the CLI's ``repro metrics serve``).
    """

    def __init__(
        self,
        source: Optional[Callable[[], str]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        runs_dir: Optional[Union[str, Path]] = None,
    ):
        self._httpd = _Server((host, port), _Handler)
        self._httpd.source = source or ledger_source(runs_dir)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
