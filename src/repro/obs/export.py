"""Trace and metric exporters: JSON documents and markdown summaries.

Two machine formats and one human format:

* :func:`trace_document` -- one JSON-ready dict holding the nested span
  tree, a Chrome-trace-compatible (``chrome://tracing`` / Perfetto)
  event list, and a metrics snapshot.
* :func:`write_trace_json` -- the same document written to a file.
* :func:`span_tree_markdown` / :func:`metrics_markdown` /
  :func:`trace_markdown` -- the tape-out review tables the CLI's
  ``profile`` subcommand prints.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Union

from .metrics import Histogram, MetricsRegistry, registry as _global_registry
from .trace import Span

#: Version stamp of the trace-document schema.
TRACE_SCHEMA = "repro-trace/1"


# -- JSON ---------------------------------------------------------------------

def span_to_dict(span: Span) -> Dict[str, Any]:
    """One span (and its subtree) as plain JSON-ready data."""
    return {
        "name": span.name,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "attrs": _jsonable(span.attrs),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from :func:`span_to_dict` output.

    The inverse used to rehydrate worker span trees shipped across a
    process boundary (pickled or as trace-document JSON) before merging
    them into the parent trace with :func:`~repro.obs.merge_spans`.
    """
    span = Span(data["name"], dict(data.get("attrs") or {}))
    span.start_s = float(data["start_s"])
    span.end_s = span.start_s + float(data["duration_s"])
    span.children = [span_from_dict(child) for child in data.get("children", [])]
    return span


def chrome_trace_events(
    roots: Sequence[Span], origin_s: Optional[float] = None
) -> List[Dict[str, Any]]:
    """Complete ("ph": "X") Chrome trace events for every span.

    Timestamps are microseconds relative to the earliest root so the
    trace starts at zero when loaded into ``chrome://tracing``.
    """
    if origin_s is None:
        origin_s = min((root.start_s for root in roots), default=0.0)
    events: List[Dict[str, Any]] = []
    for root in roots:
        for span in root.walk():
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start_s - origin_s) * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": _jsonable(span.attrs),
                }
            )
    return events


def trace_document(
    roots: Union[Span, Sequence[Span]],
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """The full trace document: span trees, Chrome events, metrics."""
    if isinstance(roots, Span):
        roots = [roots]
    if metrics is None:
        metrics = _global_registry()
    return {
        "schema": TRACE_SCHEMA,
        "spans": [span_to_dict(root) for root in roots],
        "chrome_trace": chrome_trace_events(roots),
        "metrics": metrics.snapshot(),
    }


def write_trace_json(
    path,
    roots: Union[Span, Sequence[Span]],
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    """Write :func:`trace_document` to ``path`` as indented JSON.

    Output is deterministic for a deterministic run: keys are sorted at
    every nesting level and span/attr ordering is the stable pre-order
    walk, so identical runs produce byte-identical files (modulo the
    wall-clock timing values themselves) and diff cleanly in tests.
    """
    with open(path, "w") as handle:
        json.dump(trace_document(roots, metrics), handle, indent=1,
                  sort_keys=True)
        handle.write("\n")


def _jsonable(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {key: _scalar(attrs[key]) for key in sorted(attrs)}


def _scalar(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


# -- markdown -----------------------------------------------------------------

def span_tree_markdown(
    roots: Union[Span, Sequence[Span]], max_depth: int = 8
) -> str:
    """A markdown table of the span tree.

    Same-named siblings are aggregated into one row (``calls`` counts
    them) so eight OPC iterations or a hundred tiles read as one line;
    per-call detail stays in the JSON document.
    """
    if isinstance(roots, Span):
        roots = [roots]
    lines = [
        "| span | calls | total (s) | mean (s) | % of root |",
        "|---|---|---|---|---|",
    ]
    total = sum(root.duration_s for root in roots) or 1.0
    groups = _grouped(list(roots))
    for name, members in groups:
        _emit_rows(lines, name, members, depth=0, root_total=total,
                   max_depth=max_depth)
    return "\n".join(lines)


def _grouped(spans: Sequence[Span]):
    """Sibling spans grouped by name, in first-seen order."""
    order: List[str] = []
    by_name: Dict[str, List[Span]] = {}
    for span in spans:
        if span.name not in by_name:
            order.append(span.name)
            by_name[span.name] = []
        by_name[span.name].append(span)
    return [(name, by_name[name]) for name in order]


def _emit_rows(
    lines: List[str],
    name: str,
    members: Sequence[Span],
    depth: int,
    root_total: float,
    max_depth: int,
) -> None:
    calls = len(members)
    elapsed = sum(span.duration_s for span in members)
    indent = "&nbsp;&nbsp;" * depth
    lines.append(
        f"| {indent}{name} | {calls} | {elapsed:.3f} "
        f"| {elapsed / calls:.3f} | {100.0 * elapsed / root_total:.1f}% |"
    )
    if depth + 1 >= max_depth:
        return
    children: List[Span] = []
    for span in members:
        children.extend(span.children)
    for child_name, group in _grouped(children):
        _emit_rows(lines, child_name, group, depth + 1, root_total, max_depth)


def metrics_markdown(metrics: Optional[MetricsRegistry] = None) -> str:
    """Counter/gauge table plus one summary line per histogram."""
    if metrics is None:
        metrics = _global_registry()
    snapshot = metrics.snapshot()
    scalars = {
        name: record
        for name, record in snapshot.items()
        if record["kind"] in ("counter", "gauge")
    }
    histograms = [
        name for name, record in snapshot.items()
        if record["kind"] == "histogram"
    ]
    lines: List[str] = []
    if scalars:
        lines += ["| metric | kind | value |", "|---|---|---|"]
        for name, record in scalars.items():
            lines.append(
                f"| {name} | {record['kind']} | {_fmt(record['value'])} |"
            )
    if histograms:
        if lines:
            lines.append("")
        lines += [
            "| histogram | count | mean | min | p50 | p90 | max |",
            "|---|---|---|---|---|---|---|",
        ]
        for name in histograms:
            histogram = metrics.get(name)
            assert isinstance(histogram, Histogram)
            lines.append(
                f"| {name} | {histogram.count} | {_fmt(histogram.mean)} "
                f"| {_fmt(histogram.min if histogram.count else None)} "
                f"| {_fmt(histogram.quantile(0.5))} "
                f"| {_fmt(histogram.quantile(0.9))} "
                f"| {_fmt(histogram.max if histogram.count else None)} |"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def trace_markdown(
    roots: Union[Span, Sequence[Span]],
    metrics: Optional[MetricsRegistry] = None,
) -> str:
    """Span tree plus metrics, ready to print after a profiled run."""
    parts = ["### Span tree", "", span_tree_markdown(roots), ""]
    parts += ["### Metrics", "", metrics_markdown(metrics)]
    return "\n".join(parts)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
