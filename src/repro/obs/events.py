"""Live telemetry: the schema-versioned ``repro-event/1`` event bus.

Spans (:mod:`repro.obs.trace`) and the run ledger (:mod:`repro.obs.runs`)
are post-hoc: nothing is visible until a run finishes.  This module is
the *live* side -- a process-wide bus of typed, timestamped events that
pluggable sinks consume while the run is still going:

* ``run.start`` / ``run.end`` -- one outermost flow invocation.
* ``phase.start`` / ``phase.end`` -- pipeline stages, emitted by the
  span open/close hooks in :mod:`repro.obs.trace` for the span names in
  :data:`PHASE_SPANS`.
* ``tile.scheduled`` / ``tile.start`` / ``tile.retry`` / ``tile.done``
  / ``tile.failed`` -- the life of one OPC tile job.
* ``opc.iteration`` -- per-iteration EPE statistics from the model-OPC
  loop.
* ``worker.resource`` -- CPU%% and RSS sampled per process (stdlib
  ``resource`` + ``/proc``; see :class:`ResourceSampler`).
* ``progress`` -- tiles done/total and an ETA from a per-tile runtime
  EWMA (:class:`PoolProgress`).

Events cross the process boundary live: pool workers attach a
:class:`QueueSink` that forwards onto a bounded ``multiprocessing.Queue``
with ``put_nowait`` -- a full queue increments a drop counter instead of
ever blocking the worker, so telemetry can never stall the pool.  The
parent drains the queue between future completions
(:func:`result_draining`) and re-stamps each forwarded event with its
own strictly increasing sequence number, so any persisted stream
validates with :func:`validate_event`.

Everything here is wall-clock territory, which is exactly why it lives
in ``repro.obs`` and not ``repro.opc``: the repo lint (R001) bans clock
calls in the deterministic correction packages, so the pool calls the
clock-free facade objects this module provides (:class:`PoolProgress`,
:func:`result_draining`, :func:`drain_queue`).

The disabled state costs one module attribute read per emit point
(:data:`_active`), same contract as :mod:`repro.obs.state`.
"""

from __future__ import annotations

import json
import os
import queue as _queue_mod
import threading
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter, sleep, time as _wall_clock
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from ..errors import ReproError

#: Version stamp of the event schema.
EVENT_SCHEMA = "repro-event/1"

#: Every event type the schema admits.
EVENT_TYPES = frozenset(
    {
        "run.start",
        "run.end",
        "phase.start",
        "phase.end",
        "tile.scheduled",
        "tile.start",
        "tile.retry",
        "tile.done",
        "tile.failed",
        "opc.iteration",
        "worker.resource",
        "progress",
    }
)

#: Span names the trace hooks (:func:`repro.obs.trace.span`) report as
#: pipeline phases (``phase.start`` / ``phase.end`` events).
PHASE_SPANS = frozenset(
    {
        "tapeout.preflight",
        "tapeout.retarget",
        "tapeout.correct",
        "tapeout.smooth",
        "tapeout.mrc",
        "tapeout.orc",
        "correct.preflight",
        "correct.sraf",
        "opc.parallel",
    }
)

#: Bound of the worker->parent forwarding queue; a full queue drops
#: events (counted) rather than blocking the worker.
QUEUE_MAX_ENV = "REPRO_EVENTS_QUEUE_MAX"
DEFAULT_QUEUE_MAX = 1024

#: Minimum seconds between ``worker.resource`` samples (0 = every emit).
RESOURCE_INTERVAL_ENV = "REPRO_EVENTS_RESOURCE_INTERVAL"
DEFAULT_RESOURCE_INTERVAL_S = 0.5

_TOP_LEVEL_KEYS = frozenset({"schema", "seq", "ts", "type", "pid", "data", "drops"})


# -- sinks --------------------------------------------------------------------

class JsonlSink:
    """Append events to a JSONL file, one ``sort_keys`` line per event.

    Lines are flushed as written so ``repro watch`` can tail the file of
    an in-flight run.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = str(path)
        self._handle = open(self.path, "w", encoding="utf-8")

    def emit(self, event: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class RingBufferSink:
    """Keep the newest ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)

    def emit(self, event: Dict[str, Any]) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)

    def close(self) -> None:
        pass


class CallbackSink:
    """Hand every event to a callable (the job server's WebSocket hook)."""

    def __init__(self, fn: Callable[[Dict[str, Any]], Any]):
        self.fn = fn

    def emit(self, event: Dict[str, Any]) -> None:
        self.fn(event)

    def close(self) -> None:
        pass


class QueueSink:
    """Worker-side sink: forward events over a bounded ``mp.Queue``.

    Never blocks: a full queue increments :attr:`dropped` and the loss is
    reported to the parent as a ``drops`` count attached to the next
    event that does get through, so the drained stream accounts for
    every lost message.
    """

    def __init__(self, events_queue: Any):
        self.queue = events_queue
        self.dropped = 0
        self._pending_drops = 0

    def emit(self, event: Dict[str, Any]) -> None:
        message = {
            "type": event["type"],
            "ts": event["ts"],
            "pid": event["pid"],
            "data": event["data"],
        }
        if self._pending_drops:
            message["drops"] = self._pending_drops
        try:
            self.queue.put_nowait(message)
        except _queue_mod.Full:
            self.dropped += 1
            self._pending_drops += 1
        except (ValueError, OSError):  # queue closed mid-shutdown
            self.dropped += 1
            self._pending_drops += 1
        else:
            self._pending_drops = 0

    def close(self) -> None:
        pass


# -- resource sampling --------------------------------------------------------

def _cpu_seconds_and_rss() -> tuple:
    """(cumulative CPU seconds, resident set bytes) of this process.

    Stdlib only: ``resource.getrusage`` for CPU time, ``/proc/self/statm``
    for current RSS with the rusage high-water mark as the fallback on
    platforms without procfs.
    """
    cpu_s = 0.0
    max_rss = 0
    try:
        import resource as _resource

        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        cpu_s = usage.ru_utime + usage.ru_stime
        # Linux reports ru_maxrss in KiB.
        max_rss = int(usage.ru_maxrss) * 1024
    except Exception:  # pragma: no cover - non-POSIX fallback
        pass
    rss = 0
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            rss = int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except Exception:  # pragma: no cover - no procfs
        rss = max_rss
    return cpu_s, rss


class ResourceSampler:
    """Rate-limited ``worker.resource`` emitter piggybacking on the bus.

    CPU%% is derived from deltas of cumulative CPU seconds between
    samples; the first sample of a process therefore reports ``None``.
    """

    def __init__(self, interval_s: float = DEFAULT_RESOURCE_INTERVAL_S):
        self.interval_s = interval_s
        self._last_emit: Optional[float] = None
        self._last_cpu_s: Optional[float] = None
        self._last_wall: Optional[float] = None

    def sample(self) -> Dict[str, Any]:
        cpu_s, rss = _cpu_seconds_and_rss()
        now = perf_counter()
        cpu_percent: Optional[float] = None
        if self._last_wall is not None and now > self._last_wall:
            cpu_percent = round(
                100.0 * (cpu_s - self._last_cpu_s) / (now - self._last_wall), 1
            )
        self._last_cpu_s, self._last_wall = cpu_s, now
        return {"cpu_percent": cpu_percent, "rss_bytes": rss}

    def maybe_emit(self, bus_obj: "EventBus") -> None:
        now = perf_counter()
        if self._last_emit is not None and now - self._last_emit < self.interval_s:
            return
        self._last_emit = now
        bus_obj.emit("worker.resource", self.sample())


def resource_interval_s() -> float:
    """The configured minimum seconds between resource samples."""
    try:
        return max(0.0, float(os.environ.get(RESOURCE_INTERVAL_ENV, "")))
    except ValueError:
        return DEFAULT_RESOURCE_INTERVAL_S


# -- the bus ------------------------------------------------------------------

class EventBus:
    """Process-wide fan-out of schema-versioned events to attached sinks.

    Sequence numbers are assigned under a lock at emit time, so any
    single bus's stream is strictly increasing; forwarded worker events
    are re-stamped by the parent bus (:meth:`forward`), keeping the
    property across the process boundary.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sinks: List[Any] = []
        self._seq = 0
        self.emitted = 0
        self.dropped = 0
        #: Optional :class:`ResourceSampler` piggybacking on emissions.
        self.sampler: Optional[ResourceSampler] = None

    @property
    def active(self) -> bool:
        return bool(self._sinks)

    def attach(self, sink: Any) -> Any:
        """Register ``sink`` and return it (for later :meth:`detach`)."""
        with self._lock:
            self._sinks.append(sink)
        _refresh_active()
        return sink

    def detach(self, sink: Any) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
        _refresh_active()

    def clear(self) -> None:
        """Drop every sink and the sampler (fork-inheritance hygiene)."""
        with self._lock:
            self._sinks = []
        self.sampler = None
        _refresh_active()

    def emit(
        self,
        type_: str,
        data: Optional[Dict[str, Any]] = None,
        ts: Optional[float] = None,
        pid: Optional[int] = None,
        drops: int = 0,
    ) -> Dict[str, Any]:
        """Stamp and fan one event out to every sink; returns the event."""
        event: Dict[str, Any] = {
            "schema": EVENT_SCHEMA,
            "type": type_,
            "ts": ts if ts is not None else _wall_clock(),
            "pid": pid if pid is not None else os.getpid(),
            "data": data if data is not None else {},
        }
        if drops:
            event["drops"] = drops
        with self._lock:
            event["seq"] = self._seq
            self._seq += 1
            self.emitted += 1
            if drops:
                self.dropped += drops
            sinks = list(self._sinks)
        for sink in sinks:
            sink.emit(event)
        sampler = self.sampler
        if sampler is not None and type_ != "worker.resource":
            sampler.maybe_emit(self)
        return event

    def forward(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Re-stamp a worker-queued message into this bus's stream.

        The worker's timestamp and pid survive; the sequence number is
        the parent's, so the merged stream stays strictly increasing.
        """
        return self.emit(
            message["type"],
            message.get("data") or {},
            ts=message.get("ts"),
            pid=message.get("pid"),
            drops=int(message.get("drops", 0) or 0),
        )


_bus = EventBus()

#: Fast-path guard mirrored from ``_bus.active``: every emit point reads
#: this one module attribute, keeping the no-sinks cost to ~one boolean.
_active = False

#: The worker-side :class:`QueueSink`, when forwarding is installed.
_worker_sink: Optional[QueueSink] = None


def _refresh_active() -> None:
    global _active
    _active = _bus.active


def bus() -> EventBus:
    """The process-wide event bus."""
    return _bus


def active() -> bool:
    """Whether any sink is attached (i.e. whether emitting does work)."""
    return _active


def emit(type_: str, **data: Any) -> None:
    """Emit one event on the global bus; a no-op with no sinks attached."""
    if _active:
        _bus.emit(type_, data)


def worker_drop_count() -> int:
    """Events this worker process dropped on a full forwarding queue."""
    sink = _worker_sink
    return sink.dropped if sink is not None else 0


def install_worker_forwarding(events_queue: Optional[Any]) -> None:
    """Reset this process's bus and forward its events over ``events_queue``.

    Called from the pool initializer in every worker: forked children
    inherit the parent's attached sinks (a JSONL sink's file handle,
    a ring buffer...), which must never see worker-side emissions
    directly -- so the bus is cleared first, then, when a queue is given,
    a :class:`QueueSink` plus a :class:`ResourceSampler` are installed.
    """
    global _worker_sink
    _bus.clear()
    _worker_sink = None
    if events_queue is not None:
        _worker_sink = _bus.attach(QueueSink(events_queue))
        _bus.sampler = ResourceSampler(resource_interval_s())


# -- parent-side pool helpers (keep repro.opc clock-free) ---------------------

def queue_max() -> int:
    """Bound of the worker->parent event queue (env-overridable)."""
    try:
        return max(1, int(os.environ.get(QUEUE_MAX_ENV, "")))
    except ValueError:
        return DEFAULT_QUEUE_MAX


def drain_queue(events_queue: Any, bus_obj: Optional[EventBus] = None) -> int:
    """Forward every queued worker message onto the bus; returns the count.

    Defensive against torn-down pools: a queue broken by a killed worker
    ends the drain instead of raising into the retry machinery.
    """
    target = bus_obj if bus_obj is not None else _bus
    drained = 0
    while True:
        try:
            message = events_queue.get_nowait()
        except _queue_mod.Empty:
            return drained
        except Exception:  # broken pipe after a worker kill
            return drained
        target.forward(message)
        drained += 1


def result_draining(
    future: Any,
    timeout_s: Optional[float],
    events_queue: Optional[Any],
    poll_s: float = 0.05,
) -> Any:
    """``future.result(timeout_s)`` that drains worker events while waiting.

    With no queue this is exactly ``future.result``; with one, the wait
    is chopped into ``poll_s`` laps with a queue drain between laps, so
    events stream to the parent's sinks *during* tile execution instead
    of arriving in one burst at completion.  Honors the overall
    ``timeout_s`` deadline and re-raises the future's own exceptions
    (including ``concurrent.futures.TimeoutError``) unchanged.
    """
    from concurrent.futures import TimeoutError as _FutureTimeout

    if events_queue is None:
        return future.result(timeout=timeout_s)
    deadline = None if timeout_s is None else perf_counter() + timeout_s
    while True:
        drain_queue(events_queue)
        if deadline is None:
            wait_s = poll_s
        else:
            wait_s = min(poll_s, deadline - perf_counter())
            if wait_s <= 0:
                # Deadline passed: one final non-blocking check, then the
                # timeout propagates like a plain future.result would.
                result = future.result(timeout=0)
                drain_queue(events_queue)
                return result
        try:
            result = future.result(timeout=wait_s)
        except _FutureTimeout:
            continue
        drain_queue(events_queue)
        return result


class PoolProgress:
    """Parent-side progress/ETA telemetry over one tiled correction.

    Owns every clock read the pool needs (keeping ``repro.opc``
    deterministic under lint rule R001) and every ``tile.scheduled`` /
    ``tile.retry`` / ``tile.failed`` / ``progress`` emission.  The ETA
    is ``remaining * EWMA(per-tile wall time) / n_workers``, with the
    per-tile time estimated from completion intervals scaled by worker
    count.  All methods are cheap no-ops while the bus has no sinks.
    """

    def __init__(self, total: int, n_workers: int = 1, alpha: float = 0.3):
        self.total = total
        self.n_workers = max(1, n_workers)
        self.alpha = alpha
        self.done = 0
        self.retries = 0
        self.failures = 0
        self.fallbacks = 0
        self.ewma_tile_s: Optional[float] = None
        self._last_done_at = perf_counter()

    def scheduled(self, index: int, tile: Any = None) -> None:
        if not _active:
            return
        data: Dict[str, Any] = {"index": index}
        if tile is not None:
            data.update(x1=tile.x1, y1=tile.y1, x2=tile.x2, y2=tile.y2)
        _bus.emit("tile.scheduled", data)

    def retry(self, index: int, attempt: int, reason: str = "") -> None:
        if not _active:
            return
        self.retries += 1
        _bus.emit(
            "tile.retry",
            {"index": index, "attempt": attempt, "reason": reason[:200]},
        )

    def failed(self, index: int, reason: str = "", fallback: bool = False) -> None:
        if not _active:
            return
        self.failures += 1
        if fallback:
            self.fallbacks += 1
        _bus.emit(
            "tile.failed",
            {
                "index": index,
                "final": True,
                "fallback": fallback,
                "reason": reason[:200],
            },
        )

    def tile_done(self, index: int) -> None:
        if not _active:
            return
        self.done += 1
        now = perf_counter()
        per_tile_s = (now - self._last_done_at) * self.n_workers
        self._last_done_at = now
        if self.ewma_tile_s is None:
            self.ewma_tile_s = per_tile_s
        else:
            self.ewma_tile_s = (
                self.alpha * per_tile_s + (1.0 - self.alpha) * self.ewma_tile_s
            )
        remaining = max(self.total - self.done, 0)
        eta_s = (
            remaining * self.ewma_tile_s / self.n_workers
            if self.ewma_tile_s is not None
            else None
        )
        _bus.emit(
            "progress",
            {
                "done": self.done,
                "total": self.total,
                "pct": round(100.0 * self.done / self.total, 1)
                if self.total
                else 100.0,
                "eta_s": round(eta_s, 3) if eta_s is not None else None,
                "ewma_tile_s": round(self.ewma_tile_s, 4)
                if self.ewma_tile_s is not None
                else None,
                "retries": self.retries,
                "failures": self.failures,
                "fallbacks": self.fallbacks,
            },
        )


# -- run scoping --------------------------------------------------------------

class RunEvents:
    """Handle yielded by :func:`run_scope`: the run's captured events."""

    def __init__(self, label: str):
        self.label = label
        self.wall_s = 0.0
        self._ring: Optional[RingBufferSink] = None

    @property
    def captured(self) -> bool:
        """Whether this scope recorded the run's event stream."""
        return self._ring is not None

    @property
    def events(self) -> List[Dict[str, Any]]:
        return self._ring.events if self._ring is not None else []

    def progress_summary(self) -> Optional[Dict[str, Any]]:
        """The deterministic final-progress digest of the captured stream.

        Exactly what a ``repro watch --replay`` of the persisted log
        reproduces; ``None`` when nothing was captured.
        """
        if self._ring is None:
            return None
        tracker = ProgressTracker()
        tracker.consume_all(self._ring.events)
        return tracker.summary()


_run_depth = 0


def _ledger_capture_enabled() -> bool:
    # Lazy sibling import: runs.py does not import this module, so the
    # dependency edge stays one-way at import time.
    from .runs import auto_enabled

    return auto_enabled()


@contextmanager
def run_scope(
    label: str,
    capture: bool = True,
    force: bool = False,
    capacity: int = 200_000,
) -> Iterator[RunEvents]:
    """Bracket one flow invocation with ``run.start`` / ``run.end``.

    Only the outermost scope emits (a ``correct`` nested inside a
    ``tapeout`` adds nothing), and only when events are flowing: a sink
    is already attached, the run ledger is auto-recording (so the stream
    can be persisted for replay), or ``force`` is set by a caller that
    will persist the capture itself.  The yielded :class:`RunEvents`
    exposes the captured stream and its progress digest for
    :func:`repro.obs.runs.record_run`.
    """
    global _run_depth
    handle = RunEvents(label)
    outermost = _run_depth == 0
    emitting = outermost and (_active or force or _ledger_capture_enabled())
    if emitting and capture:
        handle._ring = _bus.attach(RingBufferSink(capacity))
    _run_depth += 1
    started = perf_counter()
    if emitting:
        _bus.emit("run.start", {"label": label})
    try:
        yield handle
    finally:
        _run_depth -= 1
        handle.wall_s = perf_counter() - started
        if emitting:
            _bus.emit("run.end", {"label": label, "wall_s": round(handle.wall_s, 6)})
            if handle._ring is not None:
                _bus.detach(handle._ring)


# -- validation ---------------------------------------------------------------

def validate_event(
    event: Any, prev_seq: Optional[int] = None
) -> int:
    """Check one event against ``repro-event/1``; returns its ``seq``.

    Raises :class:`~repro.errors.ReproError` naming the first violation.
    ``prev_seq`` additionally enforces strictly increasing sequence
    numbers across a stream.
    """
    if not isinstance(event, dict):
        raise ReproError(f"event is not an object: {type(event).__name__}")
    unknown = set(event) - _TOP_LEVEL_KEYS
    if unknown:
        raise ReproError(f"unknown event key(s): {sorted(unknown)}")
    if event.get("schema") != EVENT_SCHEMA:
        raise ReproError(
            f"unsupported event schema {event.get('schema')!r} "
            f"(expected {EVENT_SCHEMA})"
        )
    type_ = event.get("type")
    if type_ not in EVENT_TYPES:
        raise ReproError(f"unknown event type {type_!r}")
    seq = event.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ReproError(f"event seq must be a non-negative integer, got {seq!r}")
    if prev_seq is not None and seq <= prev_seq:
        raise ReproError(
            f"sequence numbers must be strictly increasing: {seq} after {prev_seq}"
        )
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        raise ReproError(f"event ts must be a number, got {ts!r}")
    pid = event.get("pid")
    if not isinstance(pid, int) or isinstance(pid, bool) or pid < 0:
        raise ReproError(f"event pid must be a non-negative integer, got {pid!r}")
    if not isinstance(event.get("data"), dict):
        raise ReproError("event data must be an object")
    drops = event.get("drops", 0)
    if not isinstance(drops, int) or isinstance(drops, bool) or drops < 0:
        raise ReproError(f"event drops must be a non-negative integer, got {drops!r}")
    return seq


def validate_events(events: Sequence[Dict[str, Any]]) -> int:
    """Validate a whole stream (schema + monotone seq); returns the count."""
    prev: Optional[int] = None
    count = 0
    for event in events:
        prev = validate_event(event, prev)
        count += 1
    return count


# -- progress folding ---------------------------------------------------------

class ProgressTracker:
    """Fold a ``repro-event/1`` stream into the live progress state.

    Purely a function of the consumed events (no clock reads), so the
    :meth:`summary` of a replayed persisted log is byte-identical to the
    one captured live -- the property ``repro watch --replay`` asserts.
    """

    def __init__(self) -> None:
        self.run_label: Optional[str] = None
        self.run_wall_s: Optional[float] = None
        self.run_ended = False
        self.phase: Optional[str] = None
        self.phases: List[str] = []
        self.tiles_done = 0
        self.retries = 0
        self.failures = 0
        self.fallbacks = 0
        self.eta_s: Optional[float] = None
        self.ewma_tile_s: Optional[float] = None
        self.iterations = 0
        self.worst_max_epe_nm: Optional[float] = None
        self.last_rms_epe_nm: Optional[float] = None
        self.workers: Dict[int, Dict[str, Any]] = {}
        self.events_seen = 0
        self.dropped = 0
        self.last_seq: Optional[int] = None
        self.seq_monotonic = True
        self._scheduled: set = set()
        self._progress_total = 0
        self._tile_done_events = 0

    @property
    def tiles_total(self) -> int:
        return max(self._progress_total, len(self._scheduled))

    def consume(self, event: Dict[str, Any]) -> None:
        seq = event.get("seq")
        if isinstance(seq, int):
            if self.last_seq is not None and seq <= self.last_seq:
                self.seq_monotonic = False
            self.last_seq = seq
        self.events_seen += 1
        self.dropped += int(event.get("drops", 0) or 0)
        type_ = event.get("type")
        data = event.get("data") or {}
        if type_ == "run.start":
            self.run_label = data.get("label")
        elif type_ == "run.end":
            self.run_ended = True
            self.run_wall_s = data.get("wall_s")
        elif type_ == "phase.start":
            self.phase = data.get("name")
        elif type_ == "phase.end":
            name = data.get("name")
            if name:
                self.phases.append(name)
            if self.phase == name:
                self.phase = None
        elif type_ == "tile.scheduled":
            self._scheduled.add(data.get("index"))
        elif type_ == "tile.done":
            self._tile_done_events += 1
            self.tiles_done = max(self.tiles_done, self._tile_done_events)
        elif type_ == "tile.retry":
            self.retries += 1
        elif type_ == "tile.failed":
            if data.get("final"):
                self.failures += 1
                if data.get("fallback"):
                    self.fallbacks += 1
        elif type_ == "progress":
            self.tiles_done = max(self.tiles_done, int(data.get("done") or 0))
            self._progress_total = max(
                self._progress_total, int(data.get("total") or 0)
            )
            self.eta_s = data.get("eta_s")
            self.ewma_tile_s = data.get("ewma_tile_s")
            # The pool's counters and the per-event tallies describe the
            # same facts; "max" keeps them from double counting.
            self.retries = max(self.retries, int(data.get("retries") or 0))
            self.failures = max(self.failures, int(data.get("failures") or 0))
            self.fallbacks = max(self.fallbacks, int(data.get("fallbacks") or 0))
        elif type_ == "opc.iteration":
            self.iterations += 1
            rms = data.get("rms_epe_nm")
            if rms is not None:
                self.last_rms_epe_nm = rms
            worst = data.get("max_epe_nm")
            if worst is not None and (
                self.worst_max_epe_nm is None or worst > self.worst_max_epe_nm
            ):
                self.worst_max_epe_nm = worst
        elif type_ == "worker.resource":
            self.workers[int(event.get("pid") or 0)] = {
                "cpu_percent": data.get("cpu_percent"),
                "rss_bytes": data.get("rss_bytes"),
            }

    def consume_all(self, events: Sequence[Dict[str, Any]]) -> None:
        for event in events:
            self.consume(event)

    def summary(self) -> Dict[str, Any]:
        """Deterministic digest of everything consumed so far.

        Stored as a :class:`~repro.obs.runs.RunRecord`'s ``progress``
        field (schema ``repro-run/1.3``) and reproduced exactly by a
        replay of the persisted event log.
        """
        return {
            "complete": self.run_ended,
            "dropped": self.dropped,
            "events": self.events_seen,
            "failures": self.failures,
            "fallbacks": self.fallbacks,
            "iterations": self.iterations,
            "last_rms_epe_nm": self.last_rms_epe_nm,
            "phases": list(self.phases),
            "retries": self.retries,
            "run_label": self.run_label,
            "run_wall_s": self.run_wall_s,
            "seq_monotonic": self.seq_monotonic,
            "tiles_done": self.tiles_done,
            "tiles_total": self.tiles_total,
            "workers": len(self.workers),
            "worst_max_epe_nm": self.worst_max_epe_nm,
        }


# Re-exported so watch.py can sleep without importing time directly.
_sleep = sleep
