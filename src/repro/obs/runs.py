"""Persistent run ledger: record, diff and regression-gate instrumented runs.

The paper's argument is about *trajectories* -- OPC adoption multiplies
runtime, mask data volume and figure counts node over node -- and a
single process's trace (:mod:`repro.obs.trace`) cannot show a trajectory.
This module persists every instrumented run so the next one has a
baseline:

* :class:`RunRecord` -- one run: id, UTC timestamp, git revision, a
  stable *config fingerprint* (node, recipes, litho config, CLI args),
  the span tree and metric snapshot from :mod:`repro.obs`, and
  first-class quality metrics (EPE RMS/max, mask figure count and data
  volume, MRC/ORC verdicts, tile retry/fallback counters, ...).
* :class:`RunLedger` -- an append-only store of schema-versioned JSONL
  (``repro-run/1``) under ``.repro-runs/`` (or ``$REPRO_RUNS_DIR``) with
  a sidecar index for cheap listing.
* :func:`diff_runs` / :func:`diff_markdown` -- per-span-path wall-time
  deltas plus per-metric and per-quality deltas between two records.
* :func:`check_regressions` -- compares a candidate against the median
  of N baseline runs with configurable absolute/relative thresholds and
  a noise floor; ``repro runs check`` exits non-zero on failure so CI
  can gate on it.
* :func:`dashboard_html` -- a self-contained HTML dashboard with
  per-stage bars for the latest run and run-history sparklines.

Quality metric conventions: any counter or gauge named ``quality.<key>``
in the metric snapshot is lifted into the record's quality dict under
``<key>`` -- benchmarks use this to publish derived numbers such as
``quality.lineend_pullback_nm`` or ``quality.pw_area`` without this
module knowing about them.  Keys in :data:`HIGHER_IS_BETTER` regress
when they *drop*; everything else regresses when it grows.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, is_dataclass
from datetime import datetime, timezone
from enum import Enum
from pathlib import Path
from statistics import median
from typing import (
    Any,
    Collection,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from ..errors import ReproError
from .export import span_to_dict
from .metrics import registry as _global_registry
from .spatial import canonical_spatial, hotspot_svg
from .trace import Span

#: Version stamp of the run-record schema.  ``1.1`` added the optional
#: ``spatial`` payload (hotspot grids, worst sites, per-tile convergence);
#: ``1.2`` added the optional ``preflight`` summary (static lint verdict
#: recorded by the flow gates); ``1.3`` added the optional ``events_path``
#: (persisted ``repro-event/1`` stream, relative to the ledger root) and
#: ``progress`` (final live-progress digest) so any ledgered run can be
#: replayed with ``repro watch --replay``; ``1.4`` added the optional
#: ``profile`` summary (:func:`repro.obs.prof.profile_summary`: top
#: sampled frames, per-span ``cpu_s``/``wall_s``, peak RSS) plus its
#: lifted quality gauges so ``runs diff``/``check`` gate on CPU time and
#: peak memory, not just wall clock; ``1.5`` added the optional ``mrc``
#: summary (postflight mask-rule verdict: violation counts by rule,
#: capped localized markers, and the VSB shot/vertex/figure estimate,
#: see :meth:`repro.verify.mrc.MRCReport.summary_dict`) whose
#: ``mrc_violations`` / ``mask_shot_count`` gauges land in quality so
#: ``runs check`` gates mask manufacturability.  All changes are purely
#: additive, so older records still load.
RUN_SCHEMA = "repro-run/1.5"

#: Every schema revision :meth:`RunRecord.from_dict` accepts.
SUPPORTED_SCHEMAS = (
    "repro-run/1", "repro-run/1.1", "repro-run/1.2", "repro-run/1.3",
    "repro-run/1.4", "repro-run/1.5",
)

#: Environment variable naming the store directory (also the auto-record
#: switch for :func:`auto_enabled`).
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Store directory used when the environment names none.
DEFAULT_STORE_DIR = ".repro-runs"

#: Quality keys where a *drop* (not growth) is the regression.
HIGHER_IS_BETTER = frozenset(
    {
        "mrc_clean",
        "orc_clean",
        "opc_converged",
        "pw_area",
        "process_window_area",
        "tiles_converged",
    }
)

#: Parallel-OPC counters lifted into every record's quality dict.
_TILE_COUNTERS = {
    "opc.tile_retries": "tile_retries",
    "opc.tile_failures": "tile_failures",
    "opc.tile_fallbacks": "tile_fallbacks",
}

_RUNS_FILE = "runs.jsonl"
_INDEX_FILE = "index.jsonl"


# -- config fingerprinting ----------------------------------------------------

def canonical_config(value: Any) -> Any:
    """``value`` reduced to plain, deterministic JSON-ready data.

    Dataclasses become field dicts, enums their values, numpy arrays and
    scalars plain lists/numbers, mappings get sorted string keys; anything
    else falls back to ``str``.  Two equal configs canonicalise to equal
    data in any process, which is what makes fingerprints stable across
    restarts.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical_config(getattr(value, f.name))
            for f in fields(value)
        }
    if isinstance(value, Enum):
        return canonical_config(value.value)
    if isinstance(value, dict):
        return {
            str(key): canonical_config(value[key])
            for key in sorted(value, key=str)
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=str) if isinstance(value, (set, frozenset)) else value
        return [canonical_config(item) for item in items]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return canonical_config(value.tolist())
    return str(value)


def config_fingerprint(config: Any) -> str:
    """A short stable hash identifying one run configuration."""
    blob = json.dumps(
        canonical_config(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


_git_rev_cache: Union[str, None, bool] = False  # False = not probed yet


def git_revision() -> Optional[str]:
    """The repo's short HEAD revision, or ``None`` outside a checkout."""
    global _git_rev_cache
    if _git_rev_cache is False:
        try:
            probe = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5, check=True,
            )
            _git_rev_cache = probe.stdout.strip() or None
        except Exception:
            _git_rev_cache = None
    return _git_rev_cache


# -- span-path timing ---------------------------------------------------------

@dataclass(frozen=True)
class SpanTiming:
    """Aggregated wall time of every span sharing one tree path."""

    calls: int
    total_s: float


def span_path_times(spans: Sequence[Dict[str, Any]]) -> Dict[str, SpanTiming]:
    """``{"tapeout/tapeout.correct/...": SpanTiming}`` over span dicts.

    Same-path spans (tiles, iterations) aggregate into one entry, the
    same rollup the markdown span table uses; insertion order is the
    pre-order walk, so it is deterministic for a deterministic pipeline.
    """
    acc: Dict[str, List[float]] = {}

    def visit(node: Dict[str, Any], prefix: str) -> None:
        path = f"{prefix}/{node['name']}" if prefix else node["name"]
        entry = acc.setdefault(path, [0, 0.0])
        entry[0] += 1
        entry[1] += float(node["duration_s"])
        for child in node.get("children", []):
            visit(child, path)

    for root in spans:
        visit(root, "")
    return {
        path: SpanTiming(int(calls), total) for path, (calls, total) in acc.items()
    }


def flatten_metrics(snapshot: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Deterministic scalars from a metric snapshot.

    Counters and gauges flatten to their value; histograms contribute
    only their observation *count* (``name.count``) -- histogram sums of
    runtimes are wall-clock noise and belong with the span deltas, while
    counts (tiles corrected, images simulated) are exactly reproducible.
    """
    out: Dict[str, Any] = {}
    for name in sorted(snapshot):
        record = snapshot[name]
        kind = record.get("kind")
        if kind in ("counter", "gauge"):
            out[name] = record["value"]
        elif kind == "histogram":
            out[f"{name}.count"] = record["count"]
    return out


def quality_from_metrics(snapshot: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Quality keys published through the registry (``quality.*`` metrics)."""
    out: Dict[str, Any] = {}
    for name in sorted(snapshot):
        record = snapshot[name]
        if record.get("kind") not in ("counter", "gauge"):
            continue
        if record["value"] is None:
            continue
        if name.startswith("quality."):
            out[name[len("quality."):]] = record["value"]
        elif name in _TILE_COUNTERS:
            out[_TILE_COUNTERS[name]] = record["value"]
    return out


# -- run records --------------------------------------------------------------

@dataclass
class RunRecord:
    """One persisted instrumented run."""

    run_id: str
    timestamp: str
    git_rev: Optional[str]
    label: str
    fingerprint: str
    config: Dict[str, Any]
    wall_s: float
    spans: List[Dict[str, Any]]
    metrics: Dict[str, Dict[str, Any]]
    quality: Dict[str, Any]
    spatial: Optional[Dict[str, Any]] = None
    #: Summary of the static preflight (``repro.lint``) that gated this
    #: run: ``{"ok", "errors", "warnings", "info", "codes"}`` (schema 1.2).
    preflight: Optional[Dict[str, Any]] = None
    #: Ledger-root-relative path of the run's persisted ``repro-event/1``
    #: stream, when live telemetry was captured (schema 1.3).
    events_path: Optional[str] = None
    #: Final progress digest of the captured event stream
    #: (:meth:`repro.obs.events.ProgressTracker.summary`; schema 1.3).
    progress: Optional[Dict[str, Any]] = None
    #: Sampled-profile summary (:func:`repro.obs.prof.profile_summary`:
    #: top frames, per-span cpu_s/wall_s, peak RSS; schema 1.4).
    profile: Optional[Dict[str, Any]] = None
    #: Postflight MRC summary (:meth:`repro.verify.mrc.MRCReport
    #: .summary_dict`: counts by rule, capped localized markers, shot
    #: estimate; schema 1.5).
    mrc: Optional[Dict[str, Any]] = None
    schema: str = RUN_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema": self.schema,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "git_rev": self.git_rev,
            "label": self.label,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "wall_s": self.wall_s,
            "spans": self.spans,
            "metrics": self.metrics,
            "quality": self.quality,
        }
        if self.spatial is not None:
            data["spatial"] = self.spatial
        if self.preflight is not None:
            data["preflight"] = self.preflight
        if self.events_path is not None:
            data["events_path"] = self.events_path
        if self.progress is not None:
            data["progress"] = self.progress
        if self.profile is not None:
            data["profile"] = self.profile
        if self.mrc is not None:
            data["mrc"] = self.mrc
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        schema = data.get("schema")
        if schema not in SUPPORTED_SCHEMAS:
            raise ReproError(
                f"unsupported run-record schema {schema!r} "
                f"(supported: {', '.join(SUPPORTED_SCHEMAS)})"
            )
        return cls(
            run_id=data["run_id"],
            timestamp=data["timestamp"],
            git_rev=data.get("git_rev"),
            label=data.get("label", ""),
            fingerprint=data["fingerprint"],
            config=data.get("config", {}),
            wall_s=float(data.get("wall_s", 0.0)),
            spans=data.get("spans", []),
            metrics=data.get("metrics", {}),
            quality=data.get("quality", {}),
            spatial=data.get("spatial"),
            preflight=data.get("preflight"),
            events_path=data.get("events_path"),
            progress=data.get("progress"),
            profile=data.get("profile"),
            mrc=data.get("mrc"),
            schema=schema,
        )

    def span_times(self) -> Dict[str, SpanTiming]:
        """Aggregated per-path wall times of this record's span trees."""
        return span_path_times(self.spans)

    def canonical_dict(self) -> Dict[str, Any]:
        """The record with every volatile field stripped.

        Drops run id, timestamp, git revision and all wall-clock values
        (span timings, ``*_s`` quality keys, histogram sums); what is
        left must be byte-identical between two runs of the same config,
        which is what the determinism tests assert.
        """
        def strip_span(node: Dict[str, Any]) -> Dict[str, Any]:
            return {
                "name": node["name"],
                "attrs": node.get("attrs", {}),
                "children": [strip_span(c) for c in node.get("children", [])],
            }

        canonical = {
            "schema": self.schema,
            "label": self.label,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "spans": [strip_span(root) for root in self.spans],
            "metrics": flatten_metrics(self.metrics),
            # Drop wall/CPU seconds (``*_s``) and the RSS high-water:
            # both vary run to run even at identical configs.
            "quality": {
                key: value
                for key, value in sorted(self.quality.items())
                if not key.endswith("_s") and key != "peak_rss_bytes"
            },
        }
        if self.spatial is not None:
            canonical["spatial"] = canonical_spatial(self.spatial)
        if self.preflight is not None:
            canonical["preflight"] = self.preflight
        if self.mrc is not None:
            canonical["mrc"] = self.mrc
        return canonical

    def canonical_json(self) -> str:
        """Deterministic JSON of :meth:`canonical_dict`."""
        return json.dumps(self.canonical_dict(), sort_keys=True, indent=1)


def new_record(
    label: str,
    config: Any,
    roots: Sequence[Union[Span, Dict[str, Any]]],
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,
    quality: Optional[Dict[str, Any]] = None,
    spatial: Optional[Dict[str, Any]] = None,
    preflight: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
    mrc: Optional[Dict[str, Any]] = None,
    run_id: Optional[str] = None,
    timestamp: Optional[str] = None,
    git_rev: Union[str, None, bool] = True,
) -> RunRecord:
    """Build a :class:`RunRecord` from captured spans and metrics.

    ``metrics`` defaults to the global registry's snapshot (which still
    holds a run's metrics right after :func:`repro.obs.capture` exits).
    ``spatial`` is the hotspot payload from
    :func:`repro.obs.spatial.spatial_summary`, when the caller built one.
    ``profile`` is a sampled-profile summary
    (:func:`repro.obs.prof.profile_summary`); its CPU totals, per-span
    CPU seconds and peak RSS are lifted into the quality dict as
    ``cpu_total_s`` / ``cpu.<span>_s`` / ``peak_rss_bytes`` gauges so
    ``runs check`` can gate on them.
    ``mrc`` is the postflight summary
    (:meth:`repro.verify.mrc.MRCReport.summary_dict`); its violation
    count and fracture shot estimate are lifted into quality as
    ``mrc_violations`` / ``mask_shot_count`` so ``runs check`` gates
    mask manufacturability too.
    ``git_rev=True`` probes the repository; pass ``None`` to skip.
    """
    span_dicts = [
        span_to_dict(root) if isinstance(root, Span) else root for root in roots
    ]
    snapshot = metrics if metrics is not None else _global_registry().snapshot()
    merged_quality = dict(quality or {})
    merged_quality.update(quality_from_metrics(snapshot))
    if profile is not None:
        if "cpu_total_s" in profile:
            merged_quality["cpu_total_s"] = profile["cpu_total_s"]
        for span_name, cpu_s in (profile.get("cpu_s") or {}).items():
            merged_quality[f"cpu.{span_name}_s"] = cpu_s
        if profile.get("peak_rss_bytes"):
            merged_quality["peak_rss_bytes"] = profile["peak_rss_bytes"]
    if mrc is not None:
        merged_quality.setdefault("mrc_violations", mrc.get("violations", 0))
        if mrc.get("shot_count") is not None:
            merged_quality.setdefault("mask_shot_count", mrc["shot_count"])
    return RunRecord(
        run_id=run_id or uuid.uuid4().hex[:12],
        timestamp=timestamp
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        git_rev=git_revision() if git_rev is True else git_rev,
        label=label,
        fingerprint=config_fingerprint(config),
        config=canonical_config(config),
        wall_s=sum(float(d["duration_s"]) for d in span_dicts),
        spans=span_dicts,
        metrics=snapshot,
        quality=merged_quality,
        spatial=spatial,
        preflight=preflight,
        profile=profile,
        mrc=mrc,
    )


# -- the ledger ---------------------------------------------------------------

@dataclass(frozen=True)
class RunIndexEntry:
    """One cheap-to-list row of the ledger index."""

    run_id: str
    timestamp: str
    label: str
    fingerprint: str
    wall_s: float
    offset: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "label": self.label,
            "fingerprint": self.fingerprint,
            "wall_s": self.wall_s,
            "offset": self.offset,
        }


class RunLedger:
    """Append-only JSONL store of run records plus a listing index.

    ``<root>/runs.jsonl`` holds one full record per line; the sidecar
    ``<root>/index.jsonl`` mirrors it with one summary line (including
    the byte offset of the full record) so ``list`` never parses span
    trees.  A missing or stale index is rebuilt from the runs file.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    @property
    def runs_path(self) -> Path:
        return self.root / _RUNS_FILE

    @property
    def index_path(self) -> Path:
        return self.root / _INDEX_FILE

    def __len__(self) -> int:
        return len(self.entries())

    def append(self, record: RunRecord) -> RunIndexEntry:
        """Persist ``record`` and return its index entry."""
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True)
        # Binary append: index offsets are byte offsets, never text cookies.
        with open(self.runs_path, "ab") as handle:
            offset = handle.tell()
            handle.write(line.encode("utf-8") + b"\n")
        entry = RunIndexEntry(
            run_id=record.run_id,
            timestamp=record.timestamp,
            label=record.label,
            fingerprint=record.fingerprint,
            wall_s=record.wall_s,
            offset=offset,
        )
        with open(self.index_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        return entry

    def entries(
        self,
        label: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> List[RunIndexEntry]:
        """Every index entry in append order, optionally filtered."""
        if not self.runs_path.exists():
            return []
        if not self.index_path.exists():
            self._rebuild_index()
        out: List[RunIndexEntry] = []
        with open(self.index_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    # A corrupt index is recoverable: rebuild it from the
                    # runs file and start the listing over.  (The rebuild
                    # raises if runs.jsonl itself is corrupt, and writes
                    # only valid JSON otherwise, so this terminates.)
                    self._rebuild_index()
                    return self.entries(label=label, fingerprint=fingerprint)
                entry = RunIndexEntry(
                    run_id=data["run_id"],
                    timestamp=data["timestamp"],
                    label=data.get("label", ""),
                    fingerprint=data["fingerprint"],
                    wall_s=float(data.get("wall_s", 0.0)),
                    offset=int(data["offset"]),
                )
                if label is not None and entry.label != label:
                    continue
                if fingerprint is not None and entry.fingerprint != fingerprint:
                    continue
                out.append(entry)
        return out

    def _rebuild_index(self) -> None:
        with open(self.runs_path, "rb") as runs, open(
            self.index_path, "w", encoding="utf-8"
        ) as index:
            offset = 0
            for lineno, line in enumerate(runs, start=1):
                stripped = line.strip()
                if stripped:
                    try:
                        data = json.loads(stripped.decode("utf-8"))
                    except (json.JSONDecodeError, UnicodeDecodeError) as error:
                        raise ReproError(
                            f"run ledger {self.root} is corrupt: "
                            f"runs.jsonl line {lineno} is not valid JSON "
                            f"({error})"
                        ) from None
                    entry = {
                        "run_id": data["run_id"],
                        "timestamp": data["timestamp"],
                        "label": data.get("label", ""),
                        "fingerprint": data["fingerprint"],
                        "wall_s": float(data.get("wall_s", 0.0)),
                        "offset": offset,
                    }
                    index.write(json.dumps(entry, sort_keys=True) + "\n")
                offset += len(line)

    def load_entry(self, entry: RunIndexEntry) -> RunRecord:
        """The full record behind one index entry (seeks, parses one line)."""
        with open(self.runs_path, "rb") as handle:
            handle.seek(entry.offset)
            raw = handle.readline()
        try:
            record = RunRecord.from_dict(json.loads(raw.decode("utf-8")))
        except (json.JSONDecodeError, UnicodeDecodeError):
            # A stale offset landing mid-line looks like corruption;
            # rebuild (which raises if the runs file really is corrupt)
            # and retry through the fresh index.
            self._rebuild_index()
            return self.load(entry.run_id)
        if record.run_id != entry.run_id:
            # The index went stale (hand-edited store); rebuild and retry.
            self._rebuild_index()
            return self.load(entry.run_id)
        return record

    def load(self, run_id: str) -> RunRecord:
        """The full record with exactly ``run_id``."""
        for entry in self.entries():
            if entry.run_id == run_id:
                return self.load_entry(entry)
        raise ReproError(f"run {run_id!r} not found in {self.root}")

    def records(self, entries: Optional[Sequence[RunIndexEntry]] = None) -> Iterator[RunRecord]:
        """Full records for ``entries`` (default: every run, append order)."""
        for entry in entries if entries is not None else self.entries():
            yield self.load_entry(entry)

    def resolve(
        self,
        ref: str,
        label: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> RunIndexEntry:
        """An index entry for a run reference.

        ``last`` (or ``latest``) is the newest matching run, ``prev`` the
        one before it, ``last~N`` counts N back from the newest; anything
        else must be a unique run-id prefix.
        """
        entries = self.entries(label=label, fingerprint=fingerprint)
        if not entries:
            raise ReproError(f"run ledger {self.root} has no matching runs")
        ref = ref.strip()
        back: Optional[int] = None
        if ref in ("last", "latest"):
            back = 0
        elif ref == "prev":
            back = 1
        elif ref.startswith("last~"):
            try:
                back = int(ref[len("last~"):])
            except ValueError:
                raise ReproError(f"bad run reference {ref!r}") from None
        if back is not None:
            if back >= len(entries):
                raise ReproError(
                    f"run reference {ref!r} reaches past the "
                    f"{len(entries)} recorded run(s)"
                )
            return entries[-1 - back]
        matches = [e for e in entries if e.run_id.startswith(ref)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ReproError(f"no run matches {ref!r} in {self.root}")
        raise ReproError(
            f"run reference {ref!r} is ambiguous "
            f"({', '.join(e.run_id for e in matches)})"
        )


def store_dir() -> str:
    """The active store directory (``$REPRO_RUNS_DIR`` or the default)."""
    return os.environ.get(RUNS_DIR_ENV) or DEFAULT_STORE_DIR


def ledger(root: Optional[Union[str, Path]] = None) -> RunLedger:
    """A ledger over ``root`` (default: :func:`store_dir`)."""
    return RunLedger(root if root is not None else store_dir())


# -- auto-recording -----------------------------------------------------------

_suppressed = False


@contextmanager
def suppress_auto_record() -> Iterator[None]:
    """Disable flow-level auto-recording for the ``with`` body.

    Used by callers that record one aggregate run themselves (the CLI's
    ``profile --record``, the benchmark fixture) so a tapeout inside the
    block does not append a second, inner record.
    """
    global _suppressed
    prior = _suppressed
    _suppressed = True
    try:
        yield
    finally:
        _suppressed = prior


def auto_enabled() -> bool:
    """Whether flows should append records on their own.

    True only when the environment names a store (``REPRO_RUNS_DIR``)
    and no caller is currently recording an enclosing run.
    """
    return bool(os.environ.get(RUNS_DIR_ENV)) and not _suppressed


def persist_run_events(
    root: Union[str, Path],
    record: RunRecord,
    events: Sequence[Dict[str, Any]],
    progress: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a run's event stream next to the ledger and stamp the record.

    The stream lands in ``<root>/events/<run_id>.jsonl`` (one
    ``sort_keys`` JSON line per event, the same bytes a live
    :class:`~repro.obs.events.JsonlSink` writes), and the record gets its
    schema-1.3 ``events_path`` / ``progress`` fields -- so call this
    *before* appending the record.  Returns the written path.
    """
    root = Path(root)
    events_dir = root / "events"
    events_dir.mkdir(parents=True, exist_ok=True)
    path = events_dir / f"{record.run_id}.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    record.events_path = f"events/{record.run_id}.jsonl"
    record.progress = progress
    return path


def record_run(
    label: str,
    config: Any,
    roots: Sequence[Union[Span, Dict[str, Any]]],
    quality: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,
    spatial: Optional[Dict[str, Any]] = None,
    preflight: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
    events: Optional[Any] = None,
    root_dir: Optional[Union[str, Path]] = None,
    mrc: Optional[Dict[str, Any]] = None,
) -> RunRecord:
    """Build a record and append it to the active store in one call.

    ``events`` is the :class:`~repro.obs.events.RunEvents` handle of the
    run's event scope, when one captured the live stream; it is persisted
    via :func:`persist_run_events` so the run can be replayed later.
    ``profile`` is the sampled-profile summary, when a profiler ran.
    ``mrc`` is the postflight mask-rule summary, when the gate ran.
    """
    record = new_record(
        label, config, roots, metrics=metrics, quality=quality,
        spatial=spatial, preflight=preflight, profile=profile, mrc=mrc,
    )
    led = ledger(root_dir)
    if events is not None and getattr(events, "captured", False):
        persist_run_events(
            led.root, record, events.events, events.progress_summary()
        )
    led.append(record)
    return record


# -- diffing ------------------------------------------------------------------

@dataclass(frozen=True)
class Delta:
    """One compared value between a baseline and a candidate run."""

    key: str
    base: Optional[float]
    cand: Optional[float]
    base_calls: Optional[int] = None
    cand_calls: Optional[int] = None

    @property
    def delta(self) -> Optional[float]:
        if self.base is None or self.cand is None:
            return None
        return self.cand - self.base

    @property
    def pct(self) -> Optional[float]:
        if self.base is None or self.cand is None or self.base == 0:
            return None
        return 100.0 * (self.cand - self.base) / self.base

    @property
    def changed(self) -> bool:
        return self.base != self.cand


@dataclass
class RunDiff:
    """Everything :func:`diff_runs` compares between two records."""

    base: RunRecord
    cand: RunRecord
    span_deltas: List[Delta]
    metric_deltas: List[Delta]
    quality_deltas: List[Delta]
    #: Distribution deltas (``<name>.mean`` / ``<name>.p95``) of every
    #: histogram either record carries; counts live in metric_deltas.
    histogram_deltas: List[Delta] = field(default_factory=list)

    @property
    def changed_metrics(self) -> List[Delta]:
        return [d for d in self.metric_deltas if d.changed]

    @property
    def changed_quality(self) -> List[Delta]:
        return [d for d in self.quality_deltas if d.changed]


def histogram_stats(record: Dict[str, Any]) -> Optional[Dict[str, float]]:
    """``{"mean", "p95"}`` of one snapshot histogram record, or ``None``.

    The p95 is bucket-resolution, mirroring
    :meth:`repro.obs.metrics.Histogram.quantile`: the upper bound of the
    bucket the rank falls in, the observed max for the overflow bucket.
    """
    if record.get("kind") != "histogram" or not record.get("count"):
        return None
    count = record["count"]
    rank = 0.95 * count
    seen = 0
    p95 = float(record["max"])
    for entry in record["buckets"]:
        seen += entry["count"]
        if seen >= rank and entry["count"]:
            if entry["le"] != "inf":
                p95 = float(entry["le"])
            break
    return {"mean": record["sum"] / count, "p95": p95}


def _histogram_deltas(base: RunRecord, cand: RunRecord) -> List[Delta]:
    names = sorted(
        {
            name
            for record in (base, cand)
            for name, entry in record.metrics.items()
            if entry.get("kind") == "histogram"
        }
    )
    out: List[Delta] = []
    for name in names:
        base_stats = histogram_stats(base.metrics.get(name, {}))
        cand_stats = histogram_stats(cand.metrics.get(name, {}))
        for stat in ("mean", "p95"):
            out.append(
                Delta(
                    key=f"{name}.{stat}",
                    base=base_stats[stat] if base_stats else None,
                    cand=cand_stats[stat] if cand_stats else None,
                )
            )
    return out


def diff_runs(base: RunRecord, cand: RunRecord) -> RunDiff:
    """Per-span-path wall-time deltas plus metric and quality deltas."""
    base_times, cand_times = base.span_times(), cand.span_times()
    paths = list(cand_times) + [p for p in base_times if p not in cand_times]
    span_deltas = [
        Delta(
            key=path,
            base=base_times[path].total_s if path in base_times else None,
            cand=cand_times[path].total_s if path in cand_times else None,
            base_calls=base_times[path].calls if path in base_times else None,
            cand_calls=cand_times[path].calls if path in cand_times else None,
        )
        for path in paths
    ]
    base_metrics = flatten_metrics(base.metrics)
    cand_metrics = flatten_metrics(cand.metrics)
    metric_deltas = [
        Delta(key, base_metrics.get(key), cand_metrics.get(key))
        for key in sorted(set(base_metrics) | set(cand_metrics))
    ]
    quality_deltas = [
        Delta(key, _num(base.quality.get(key)), _num(cand.quality.get(key)))
        for key in sorted(set(base.quality) | set(cand.quality))
    ]
    return RunDiff(
        base, cand, span_deltas, metric_deltas, quality_deltas,
        _histogram_deltas(base, cand),
    )


def _num(value: Any) -> Optional[float]:
    return float(value) if isinstance(value, (int, float)) else None


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return str(int(value))


def diff_markdown(diff: RunDiff) -> str:
    """The ``repro runs diff`` comparison tables."""
    lines = [
        f"## run diff: {diff.base.run_id} ({diff.base.label}) -> "
        f"{diff.cand.run_id} ({diff.cand.label})",
        "",
        "### span wall time",
        "",
        "| span path | calls | base (s) | cand (s) | delta (s) | delta % |",
        "|---|---|---|---|---|---|",
    ]
    for d in diff.span_deltas:
        calls = (
            str(d.cand_calls)
            if d.base_calls == d.cand_calls
            else f"{_fmt(d.base_calls)} -> {_fmt(d.cand_calls)}"
        )
        pct = f"{d.pct:+.1f}%" if d.pct is not None else "-"
        delta = f"{d.delta:+.3f}" if d.delta is not None else "-"
        lines.append(
            f"| {d.key} | {calls} | {_fmt(d.base)} | {_fmt(d.cand)} "
            f"| {delta} | {pct} |"
        )
    lines += ["", "### metrics", ""]
    changed = diff.changed_metrics
    if not changed:
        lines.append("(no metric deltas)")
    else:
        lines += ["| metric | base | cand | delta |", "|---|---|---|---|"]
        for d in changed:
            delta = f"{d.delta:+g}" if d.delta is not None else "-"
            lines.append(
                f"| {d.key} | {_fmt(d.base)} | {_fmt(d.cand)} | {delta} |"
            )
    histograms = [
        d for d in diff.histogram_deltas
        if d.base is not None or d.cand is not None
    ]
    if histograms:
        lines += ["", "### histograms (distribution deltas)", "",
                  "| histogram stat | base | cand | delta | delta % |",
                  "|---|---|---|---|---|"]
        for d in histograms:
            delta = f"{d.delta:+.4g}" if d.delta is not None else "-"
            pct = f"{d.pct:+.1f}%" if d.pct is not None else "-"
            lines.append(
                f"| {d.key} | {_fmt(d.base)} | {_fmt(d.cand)} "
                f"| {delta} | {pct} |"
            )
    if diff.quality_deltas:
        lines += ["", "### quality", "",
                  "| quality | base | cand | delta |", "|---|---|---|---|"]
        for d in diff.quality_deltas:
            delta = f"{d.delta:+g}" if d.delta is not None else "-"
            lines.append(
                f"| {d.key} | {_fmt(d.base)} | {_fmt(d.cand)} | {delta} |"
            )
    return "\n".join(lines)


# -- regression gating --------------------------------------------------------

@dataclass(frozen=True)
class RegressionPolicy:
    """Thresholds for :func:`check_regressions`.

    A span regresses only when it clears *both* gates: slower than the
    baseline median by more than ``rel_threshold`` (fractional) *and* by
    more than ``abs_floor_s`` seconds -- the absolute floor is the noise
    floor that keeps microsecond spans from tripping the relative gate.
    Quality values use ``quality_rel_threshold`` (and flip direction for
    :data:`HIGHER_IS_BETTER` keys).
    """

    rel_threshold: float = 0.25
    abs_floor_s: float = 0.05
    quality_rel_threshold: float = 0.10


@dataclass(frozen=True)
class Regression:
    """One gate finding (``severity="warn"`` demotes FAIL to WARN)."""

    kind: str  # "span", "quality" or "slo"
    key: str
    baseline: float
    candidate: float
    detail: str
    severity: str = "fail"

    def __str__(self) -> str:
        label = "REGRESSION" if self.severity == "fail" else "WARN"
        return (
            f"{label} [{self.kind}] {self.key}: "
            f"{self.baseline:.6g} -> {self.candidate:.6g} ({self.detail})"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "key": self.key,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "detail": self.detail,
            "severity": self.severity,
        }


@dataclass(frozen=True)
class Comparison:
    """One checked gate item, pass or fail -- the full comparison table.

    ``margin`` is the absolute allowance around the baseline median:
    for spans ``max(floor, baseline * rel_threshold)``, for quality the
    (possibly adaptive) +/- band.  A comparison fails exactly when the
    candidate deviates in the regressing direction by more than the
    margin, so the table is a faithful record of the verdict.
    """

    kind: str  # "span" or "quality"
    key: str
    baseline: float
    candidate: float
    margin: float
    verdict: str  # "ok", "fail" or "warn"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "key": self.key,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "margin": self.margin,
            "verdict": self.verdict,
        }


@dataclass
class RegressionReport:
    """Verdict of one candidate-vs-baselines check."""

    candidate_id: str
    baseline_ids: List[str]
    regressions: List[Regression]
    checked_spans: int = 0
    checked_quality: int = 0
    checked_slos: int = 0
    #: Every checked item, pass or fail (``repro runs check --json``).
    comparisons: List[Comparison] = field(default_factory=list)
    #: Demoted findings (flaky metrics, SLO near-misses): reported, but
    #: they do not flip :attr:`ok`.
    warnings: List[Regression] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"FAIL ({len(self.regressions)} regressions)"
        lines = [
            f"runs check: {verdict} -- candidate {self.candidate_id} vs "
            f"median of {len(self.baseline_ids)} baseline run(s) "
            f"[{', '.join(self.baseline_ids)}]; "
            f"{self.checked_spans} span paths, "
            f"{self.checked_quality} quality keys checked"
        ]
        lines += [f"note: {note}" for note in self.notes]
        lines += [str(w) for w in self.warnings]
        lines += [str(r) for r in self.regressions]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain data for ``repro runs check --json``."""
        return {
            "ok": self.ok,
            "candidate": self.candidate_id,
            "baselines": list(self.baseline_ids),
            "checked": {
                "spans": self.checked_spans,
                "quality": self.checked_quality,
                "slos": self.checked_slos,
            },
            "comparisons": [c.to_dict() for c in self.comparisons],
            "regressions": [r.to_dict() for r in self.regressions],
            "warnings": [w.to_dict() for w in self.warnings],
            "notes": list(self.notes),
        }


def check_regressions(
    candidate: RunRecord,
    baselines: Sequence[RunRecord],
    policy: RegressionPolicy = RegressionPolicy(),
    *,
    span_floors: Optional[Mapping[str, float]] = None,
    quality_margins: Optional[Mapping[str, float]] = None,
    flaky: Optional[Collection[str]] = None,
) -> RegressionReport:
    """Gate ``candidate`` against the median of ``baselines``.

    Span paths and quality keys absent from every baseline are skipped
    (new stages are not regressions); paths absent from the candidate
    simply stop being checked.

    ``span_floors`` overrides the policy's ``abs_floor_s`` per span path
    and ``quality_margins`` replaces the relative quality threshold with
    an absolute +/- band per key -- this is how the adaptive gate
    (:func:`repro.obs.analyze.gate`) injects MAD-learned noise floors.
    Quality keys listed in ``flaky`` demote their failures to WARN.
    """
    if not baselines:
        raise ReproError("regression check needs at least one baseline run")
    report = RegressionReport(
        candidate_id=candidate.run_id,
        baseline_ids=[b.run_id for b in baselines],
        regressions=[],
    )

    base_times = [b.span_times() for b in baselines]
    for path, timing in candidate.span_times().items():
        samples = [t[path].total_s for t in base_times if path in t]
        if not samples:
            continue
        report.checked_spans += 1
        base = median(samples)
        floor = policy.abs_floor_s
        floor_kind = "floor"
        if span_floors is not None and path in span_floors:
            floor = span_floors[path]
            floor_kind = "adaptive floor"
        margin = max(floor, base * policy.rel_threshold)
        failed = (
            timing.total_s - base > floor
            and timing.total_s > base * (1.0 + policy.rel_threshold)
        )
        report.comparisons.append(
            Comparison(
                kind="span",
                key=path,
                baseline=base,
                candidate=timing.total_s,
                margin=margin,
                verdict="fail" if failed else "ok",
            )
        )
        if failed:
            report.regressions.append(
                Regression(
                    kind="span",
                    key=path,
                    baseline=base,
                    candidate=timing.total_s,
                    detail=(
                        f"+{100.0 * (timing.total_s - base) / base:.1f}% over "
                        f"baseline median, threshold "
                        f"+{100.0 * policy.rel_threshold:.0f}% "
                        f"and {floor_kind} {floor:g} s"
                    ),
                )
            )

    flaky_keys = frozenset(flaky or ())
    for key in sorted(candidate.quality):
        cand_value = _num(candidate.quality.get(key))
        if cand_value is None:
            continue
        samples = [
            value
            for value in (_num(b.quality.get(key)) for b in baselines)
            if value is not None
        ]
        if not samples:
            continue
        report.checked_quality += 1
        base = median(samples)
        if quality_margins is not None and key in quality_margins:
            margin = quality_margins[key]
            threshold_desc = f"adaptive margin +/-{margin:g}"
        else:
            margin = policy.quality_rel_threshold * abs(base)
            threshold_desc = (
                f"threshold +/-{100.0 * policy.quality_rel_threshold:.0f}%"
            )
        if key in HIGHER_IS_BETTER:
            failed = cand_value < base - margin - 1e-12
            direction = "dropped below"
        else:
            failed = cand_value > base + margin + 1e-12
            direction = "grew past"
        demoted = failed and key in flaky_keys
        verdict = "ok" if not failed else ("warn" if demoted else "fail")
        report.comparisons.append(
            Comparison(
                kind="quality",
                key=key,
                baseline=base,
                candidate=cand_value,
                margin=margin,
                verdict=verdict,
            )
        )
        if failed:
            finding = Regression(
                kind="quality",
                key=key,
                baseline=base,
                candidate=cand_value,
                detail=(
                    f"{direction} baseline median, {threshold_desc}"
                    + ("; demoted to WARN (flaky metric)" if demoted else "")
                ),
                severity="warn" if demoted else "fail",
            )
            if demoted:
                report.warnings.append(finding)
            else:
                report.regressions.append(finding)
    return report


# -- HTML dashboard -----------------------------------------------------------

_DASH_CSS = """
body { font-family: ui-sans-serif, system-ui, sans-serif; margin: 2rem;
       color: #1a1a2e; background: #fafaf8; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
td, th { padding: 0.25rem 0.7rem; border-bottom: 1px solid #e0e0dc;
         text-align: left; }
.bar { background: #4a7aa7; height: 0.8rem; border-radius: 2px; }
.bar-row td { border-bottom: none; padding: 0.12rem 0.7rem; }
.mono { font-family: ui-monospace, monospace; font-size: 0.8rem; }
.spark { vertical-align: middle; }
.muted { color: #8a8a86; }
"""


def _sparkline(
    values: Sequence[float],
    width: int = 140,
    height: int = 30,
    marks: Sequence[int] = (),
) -> str:
    """A tiny inline-SVG polyline of one run-history series.

    ``marks`` are value indices to highlight with a dot -- the dashboard
    uses them for CUSUM change points (the first run of a new regime).
    """
    if not values:
        return ""
    low, high = min(values), max(values)
    spread = (high - low) or 1.0
    step = width / max(len(values) - 1, 1)

    def xy(i: int, v: float) -> tuple:
        return i * step, height - 3 - (height - 6) * (v - low) / spread

    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in
                      (xy(i, v) for i, v in enumerate(values)))
    dots = "".join(
        f'<circle cx="{xy(i, values[i])[0]:.1f}" '
        f'cy="{xy(i, values[i])[1]:.1f}" r="2.5" fill="#c0392b"/>'
        for i in marks
        if 0 <= i < len(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}">'
        f'<polyline points="{points}" fill="none" stroke="#4a7aa7" '
        f'stroke-width="1.5"/>{dots}</svg>'
    )


def _series_marks(values: Sequence[float]) -> Sequence[int]:
    """CUSUM change-point indices of one history series.

    Imported lazily: :mod:`repro.obs.analyze` imports this module, so a
    top-level import would be circular.
    """
    from .analyze import cusum_changepoints

    return [cp.index for cp in cusum_changepoints(values)]


def dashboard_html(
    records: Sequence[RunRecord], title: str = "repro run ledger"
) -> str:
    """A self-contained HTML dashboard over ``records`` (append order).

    Per-stage bars for the latest run, sparklines of wall time and every
    shared quality metric across the history, and a recent-run table.
    No external assets -- the file opens offline.
    """
    import html as _html

    if not records:
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{_html.escape(title)}</title></head>"
            "<body><p>(empty run ledger)</p></body></html>"
        )
    latest = records[-1]
    parts = [
        "<!doctype html>", "<html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title>",
        f"<style>{_DASH_CSS}</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
        f"<p class='muted'>{len(records)} run(s); latest "
        f"<span class='mono'>{latest.run_id}</span> "
        f"({_html.escape(latest.label)}, {latest.timestamp}, "
        f"wall {latest.wall_s:.3f} s)</p>",
    ]

    if latest.spatial:
        parts.append(f"<h2>EPE hotspot map (run {latest.run_id})</h2>")
        parts.append(hotspot_svg(latest.spatial))

    parts.append(f"<h2>Per-stage wall time (run {latest.run_id})</h2>")
    stages = sorted(
        latest.span_times().items(), key=lambda kv: kv[1].total_s, reverse=True
    )[:14]
    top = max((t.total_s for _, t in stages), default=0.0) or 1.0
    parts.append("<table>")
    for path, timing in stages:
        width = 100.0 * timing.total_s / top
        parts.append(
            f"<tr class='bar-row'><td class='mono'>{_html.escape(path)}</td>"
            f"<td>{timing.total_s:.3f} s &times;{timing.calls}</td>"
            f"<td style='width:22rem'><div class='bar' "
            f"style='width:{width:.1f}%'></div></td></tr>"
        )
    parts.append("</table>")

    parts.append("<h2>Run history</h2>")
    parts.append(
        "<p class='muted'>dots mark CUSUM change points "
        "(first run of a new regime)</p>"
    )
    parts.append("<table>")
    parts.append(
        "<tr><th>series</th><th>latest</th><th>trend (oldest &rarr; newest)"
        "</th></tr>"
    )
    series: List[tuple] = [("wall_s", [r.wall_s for r in records])]
    shared_keys = [
        key
        for key in sorted(latest.quality)
        if sum(1 for r in records if _num(r.quality.get(key)) is not None) >= 2
    ][:8]
    for key in shared_keys:
        series.append(
            (key, [v for v in (_num(r.quality.get(key)) for r in records)
                   if v is not None])
        )
    for name, values in series:
        parts.append(
            f"<tr><td class='mono'>{_html.escape(name)}</td>"
            f"<td>{values[-1]:.6g}</td>"
            f"<td>{_sparkline(values, marks=_series_marks(values))}</td></tr>"
        )
    parts.append("</table>")

    parts.append("<h2>Recent runs</h2><table>")
    parts.append(
        "<tr><th>run</th><th>when (UTC)</th><th>label</th>"
        "<th>fingerprint</th><th>wall (s)</th></tr>"
    )
    for record in records[-20:][::-1]:
        parts.append(
            f"<tr><td class='mono'>{record.run_id}</td>"
            f"<td>{record.timestamp}</td><td>{_html.escape(record.label)}</td>"
            f"<td class='mono'>{record.fingerprint}</td>"
            f"<td>{record.wall_s:.3f}</td></tr>"
        )
    parts.append("</table></body></html>")
    return "\n".join(parts)


def write_dashboard_html(
    path: Union[str, Path],
    records: Sequence[RunRecord],
    title: str = "repro run ledger",
) -> None:
    """Write :func:`dashboard_html` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dashboard_html(records, title=title))
        handle.write("\n")
