"""Process-wide metric registry: counters, gauges, fixed-bucket histograms.

Metric names are dotted lowercase paths (``sim.aerial_calls``,
``tile.runtime_s``); the conventions live in docs/API.md.  The module
exposes one global registry plus guarded helpers (:func:`count`,
:func:`gauge_set`, :func:`observe`) that are no-ops while the
observability switch is off, so instrumented hot paths pay only a
boolean test when telemetry is disabled.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from . import state

#: Generic duration buckets (seconds) used when a histogram gives none.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease")
        self.value += n


class Gauge:
    """A last-write-wins sample of a momentary value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed upper-bound buckets plus count/sum/min/max of observations.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ReproError(
                f"histogram {name!r} needs ascending bucket bounds"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile (the upper bound of the bucket the
        ``q``-th observation falls in; the observed max for the overflow
        bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for i, bucket in enumerate(self.bucket_counts):
            seen += bucket
            if seen >= rank and bucket:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max


class MetricsRegistry:
    """A named collection of metrics, safe for concurrent use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, kind: type, factory) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, kind):
                raise ReproError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def get(self, name: str) -> Optional[Any]:
        """The metric registered under ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every metric (tests call this between cases)."""
        with self._lock:
            self._metrics.clear()

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The merge rules follow each metric's semantics: counters add,
        gauges keep the incoming sample (last write wins), histograms sum
        bucket-wise -- their bounds must match exactly.  This is how
        per-worker metric snapshots from a multiprocessing OPC pool are
        combined into the parent's registry so counter totals are exact.
        """
        for name, record in sorted(snapshot.items()):
            kind = record.get("kind")
            if kind == "counter":
                self.counter(name).inc(record["value"])
            elif kind == "gauge":
                if record["value"] is not None:
                    self.gauge(name).set(record["value"])
            elif kind == "histogram":
                self._merge_histogram(name, record)
            else:
                raise ReproError(
                    f"cannot merge metric {name!r} of unknown kind {kind!r}"
                )

    def _merge_histogram(self, name: str, record: Dict[str, Any]) -> None:
        buckets = record["buckets"]
        bounds = tuple(entry["le"] for entry in buckets[:-1])
        histogram = self.histogram(name, bounds or DEFAULT_BUCKETS)
        if histogram.bounds != bounds:
            raise ReproError(
                f"histogram {name!r} bucket bounds differ: "
                f"{histogram.bounds} vs {bounds}"
            )
        if record["count"] == 0:
            return
        for i, entry in enumerate(buckets):
            histogram.bucket_counts[i] += entry["count"]
        histogram.count += record["count"]
        histogram.total += record["sum"]
        if record["min"] is not None and record["min"] < histogram.min:
            histogram.min = record["min"]
        if record["max"] is not None and record["max"] > histogram.max:
            histogram.max = record["max"]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A plain-data dump of every metric, JSON-ready."""
        out: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            items = list(self._metrics.items())
        for name, metric in sorted(items):
            if isinstance(metric, Counter):
                out[name] = {"kind": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"kind": "gauge", "value": metric.value}
            else:
                out[name] = {
                    "kind": "histogram",
                    "count": metric.count,
                    "sum": metric.total,
                    "mean": metric.mean,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "buckets": [
                        {"le": bound, "count": count}
                        for bound, count in zip(
                            list(metric.bounds) + ["inf"],
                            metric.bucket_counts,
                        )
                    ],
                }
        return out


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metric registry."""
    return _registry


def reset() -> None:
    """Clear the process-wide registry."""
    _registry.reset()


# -- guarded helpers (no-ops while observability is disabled) -----------------

def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` when recording is enabled."""
    if state.enabled():
        _registry.counter(name).inc(n)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` when recording is enabled."""
    if state.enabled():
        _registry.gauge(name).set(value)


def observe(
    name: str, value: float, bounds: Sequence[float] = DEFAULT_BUCKETS
) -> None:
    """Record ``value`` into histogram ``name`` when recording is enabled."""
    if state.enabled():
        _registry.histogram(name, bounds).observe(value)


def merge_snapshot(snapshot: Dict[str, Dict[str, Any]]) -> None:
    """Merge a worker's snapshot into the global registry when enabled."""
    if state.enabled():
        _registry.merge_snapshot(snapshot)


def publish_quality(quality: Dict[str, Any]) -> None:
    """Publish a quality dict as ``quality.<key>`` gauges on the registry.

    The write side of :func:`repro.obs.runs.quality_from_metrics`: flows
    call this right before recording a run so the derived quality numbers
    (EPE RMS, shot counts, MRC/ORC verdicts) are visible on the live
    OpenMetrics endpoint (:mod:`repro.obs.expo`), not only in the ledger.
    Volatile keys -- wall/CPU seconds (``*_s``) and ``peak_rss_bytes``,
    the same set :meth:`~repro.obs.runs.RunRecord.canonical_dict` strips
    -- are skipped so record canonicalisation stays byte-stable; values
    keep their numeric type for the same reason.  Unguarded on purpose:
    callers sit on recording paths, never in kernel loops.
    """
    for key in sorted(quality):
        value = quality[key]
        if isinstance(value, bool):
            value = int(value)
        elif not isinstance(value, (int, float)):
            continue
        if key.endswith("_s") or key == "peak_rss_bytes":
            continue
        _registry.gauge(f"quality.{key}").set(value)
