"""Global on/off switch for the observability layer.

Instrumentation is compiled into the hot paths permanently, so the cost
of the *disabled* state is what matters: every guarded call is one module
attribute read and one boolean test.  The switch is process-wide (not
thread-local) on purpose -- a production OPC farm turns telemetry on for
a whole job, never per worker thread.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_enabled: bool = False


def enabled() -> bool:
    """Whether spans and metrics are currently being recorded."""
    return _enabled


def enable() -> None:
    """Turn span/metric recording on."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn span/metric recording off (the default)."""
    global _enabled
    _enabled = False


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Temporarily force the recording state, restoring it on exit."""
    global _enabled
    prior = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = prior
