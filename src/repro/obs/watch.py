"""Tail, replay and render ``repro-event/1`` streams (``repro watch``).

Stdlib-only consumer side of :mod:`repro.obs.events`: read a persisted
event log back (:func:`read_events`), fold it into a progress state
(:func:`replay`), follow a growing log of an in-flight run
(:func:`tail_events`) and render a terminal progress frame
(:func:`render_frame` / :func:`watch_live`).

Replay is deterministic: :class:`~repro.obs.events.ProgressTracker` is a
pure function of the event stream, so replaying a ledgered run's
persisted log reproduces the run record's stored ``progress`` digest
exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import monotonic, sleep
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union

from ..errors import ReproError
from .events import ProgressTracker, validate_event

_CLEAR = "\x1b[2J\x1b[H"


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a persisted JSONL event log; errors name the offending line."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"event log {path} does not exist")
    events: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"event log {path} line {lineno} is not valid JSON: {error}"
                ) from error
    return events


def replay(
    path: Union[str, Path], validate: bool = True
) -> ProgressTracker:
    """Fold a persisted event log into its final progress state.

    ``validate`` additionally checks every event against the
    ``repro-event/1`` schema and the strictly-increasing-sequence
    invariant, raising :class:`~repro.errors.ReproError` on the first
    violation.
    """
    events = read_events(path)
    if validate:
        prev: Optional[int] = None
        for i, event in enumerate(events, start=1):
            try:
                prev = validate_event(event, prev)
            except ReproError as error:
                raise ReproError(f"event log {path} line {i}: {error}") from error
    tracker = ProgressTracker()
    tracker.consume_all(events)
    return tracker


def tail_events(
    path: Union[str, Path],
    poll_s: float = 0.2,
    timeout_s: Optional[float] = None,
) -> Iterator[List[Dict[str, Any]]]:
    """Yield batches of events from a (possibly still growing) log.

    Handles the file not existing yet (an in-flight run that has not
    opened its sink), partial trailing lines (a writer mid-``write``)
    and stops after the batch carrying ``run.end``.  ``timeout_s`` bounds
    the wait for *new* data -- any arriving batch resets the deadline --
    and raises :class:`~repro.errors.ReproError` when it expires.  Idle
    polls yield an empty batch so callers can refresh a display.
    """
    path = Path(path)
    offset = 0
    buffer = ""
    deadline = None if timeout_s is None else monotonic() + timeout_s
    while True:
        batch: List[Dict[str, Any]] = []
        if path.exists():
            with open(path, encoding="utf-8") as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
            buffer += chunk
            lines = buffer.split("\n")
            buffer = lines.pop()  # trailing partial (or empty) fragment
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    batch.append(json.loads(line))
                except json.JSONDecodeError as error:
                    raise ReproError(
                        f"event log {path}: corrupt line while tailing: {error}"
                    ) from error
        if batch:
            if timeout_s is not None:
                deadline = monotonic() + timeout_s
            yield batch
            if any(event.get("type") == "run.end" for event in batch):
                return
            continue
        if deadline is not None and monotonic() > deadline:
            raise ReproError(
                f"timed out after {timeout_s:.0f}s waiting for events in {path}"
            )
        yield []
        sleep(poll_s)


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = max(0.0, float(seconds))
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{int(seconds) // 60}m{int(seconds) % 60:02d}s"
    return f"{seconds:.1f}s"


def _fmt_bytes(n: Optional[int]) -> str:
    if not n:
        return "--"
    return f"{n / (1024 * 1024):.0f}MB"


def render_frame(tracker: ProgressTracker, clear: bool = False) -> str:
    """One terminal frame of the live progress view."""
    s = tracker.summary()
    lines: List[str] = []
    state = "done" if s["complete"] else "live"
    label = s["run_label"] or "?"
    header = f"repro watch · {label} [{state}]"
    if s["run_wall_s"] is not None:
        header += f" · wall {_fmt_seconds(s['run_wall_s'])}"
    lines.append(header)
    lines.append("-" * len(header))
    phase = tracker.phase or ("-" if not s["phases"] else s["phases"][-1] + " ✓")
    lines.append(f"phase      {phase}")
    total = s["tiles_total"]
    if total:
        pct = 100.0 * s["tiles_done"] / total
        bar_n = int(pct / 5)
        bar = "#" * bar_n + "." * (20 - bar_n)
        eta = "" if s["complete"] else f"  eta {_fmt_seconds(tracker.eta_s)}"
        lines.append(
            f"tiles      [{bar}] {s['tiles_done']}/{total} ({pct:.0f}%){eta}"
        )
        if tracker.ewma_tile_s is not None:
            lines.append(f"tile time  {tracker.ewma_tile_s:.3f}s (EWMA)")
    lines.append(
        f"health     retries {s['retries']}  failures {s['failures']}  "
        f"fallbacks {s['fallbacks']}  dropped {s['dropped']}"
    )
    if s["iterations"]:
        worst = s["worst_max_epe_nm"]
        last = s["last_rms_epe_nm"]
        lines.append(
            f"opc        {s['iterations']} iterations  "
            f"worst max EPE {worst if worst is not None else '--'} nm  "
            f"last rms {last if last is not None else '--'} nm"
        )
    for pid in sorted(tracker.workers):
        info = tracker.workers[pid]
        cpu = info.get("cpu_percent")
        cpu_text = f"{cpu:.0f}%" if cpu is not None else "--"
        lines.append(
            f"worker     pid {pid}  cpu {cpu_text}  "
            f"rss {_fmt_bytes(info.get('rss_bytes'))}"
        )
    lines.append(f"events     {s['events']} seen · seq "
                 f"{'ok' if s['seq_monotonic'] else 'NON-MONOTONIC'}")
    frame = "\n".join(lines)
    return (_CLEAR + frame) if clear else frame


def watch_live(
    path: Union[str, Path],
    interval_s: float = 0.5,
    timeout_s: Optional[float] = None,
    validate: bool = False,
    clear: bool = True,
    stream: Optional[TextIO] = None,
    max_frames: Optional[int] = None,
) -> ProgressTracker:
    """Follow a growing event log, re-rendering the progress view.

    Returns the final :class:`~repro.obs.events.ProgressTracker` once the
    run ends (or ``max_frames`` frames were drawn -- the test hook).
    """
    import sys

    out = stream if stream is not None else sys.stdout
    tracker = ProgressTracker()
    prev_seq: Optional[int] = None
    frames = 0
    last_draw: Optional[float] = None
    for batch in tail_events(path, poll_s=min(interval_s, 0.2),
                             timeout_s=timeout_s):
        for event in batch:
            if validate:
                prev_seq = validate_event(event, prev_seq)
            tracker.consume(event)
        now = monotonic()
        if batch or last_draw is None or now - last_draw >= interval_s:
            out.write(render_frame(tracker, clear=clear) + "\n")
            out.flush()
            last_draw = now
            frames += 1
            if max_frames is not None and frames >= max_frames:
                break
        if tracker.run_ended:
            break
    return tracker
