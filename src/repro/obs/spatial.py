"""Spatial hotspot diagnostics: put quality and runtime on the layout map.

Aggregate EPE statistics say *how bad* a correction is; they never say
*where*.  This module turns the tagged :class:`~repro.verify.epe.EPESite`
records and the ``opc.tile`` / ``opc.iteration`` span trees that a run
already produces into spatial artifacts:

* a binned 2-D EPE grid plus a ranked worst-site list
  (:func:`epe_grid`, :func:`spatial_summary`);
* per-tile convergence curves recovered from the trace
  (:func:`tile_convergence`) -- iterations, final RMS/max EPE, stall
  status and runtime for every tile, serial or parallel;
* owning-cell attribution against a layout hierarchy
  (:func:`attribute_sites`) so a worst site reads ``sram_bit [r3c7]``
  instead of a bare coordinate;
* an SVG heatmap/overlay renderer and a self-contained HTML inspector
  page (:func:`hotspot_svg`, :func:`inspect_html`) with no dependencies
  beyond the standard library.

The payload produced by :func:`spatial_summary` is plain JSON-ready data
and rides inside the run ledger's :class:`~repro.obs.runs.RunRecord`
(``spatial`` field, schema ``repro-run/1.1``).  Everything here is
duck-typed against site objects/dicts and span objects/dicts so the
module depends only on :mod:`repro.geometry` -- importing
:mod:`repro.verify` from here would close an import cycle through
:mod:`repro.litho`.
"""

from __future__ import annotations

import math
from html import escape as _escape
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..geometry import GridIndex, Rect, Transform

#: Version of the ``spatial`` payload embedded in run records.
SPATIAL_VERSION = 1

#: Keys stripped from the payload's canonical (diff-stable) form.
_VOLATILE_TILE_KEYS = ("runtime_s",)

__all__ = [
    "SPATIAL_VERSION",
    "attribute_sites",
    "canonical_spatial",
    "cell_owner_index",
    "epe_grid",
    "hotspot_svg",
    "inspect_html",
    "site_severity",
    "spatial_quality",
    "spatial_summary",
    "tile_convergence",
    "worst_site_dicts",
    "write_hotspot_svg",
    "write_inspect_html",
]


# -- site handling ------------------------------------------------------------
#
# Sites arrive either as EPESite objects (fresh measurement) or as the
# plain dicts EPESite.to_dict() persisted into a run record.  All code
# below works on the dict form.


def _site_dict(site: Any) -> Dict[str, Any]:
    if isinstance(site, dict):
        return site
    to_dict = getattr(site, "to_dict", None)
    if to_dict is None:
        raise ReproError(f"not an EPE site: {site!r}")
    return to_dict()


def site_severity(site: Dict[str, Any]) -> float:
    """Ranking key of a site dict: |EPE|, missing edges above any number."""
    epe = site.get("epe_nm")
    return float("inf") if epe is None else abs(float(epe))


def worst_site_dicts(
    sites: Iterable[Any], k: int = 10
) -> List[Dict[str, Any]]:
    """The ``k`` worst sites as dicts, deterministically ordered.

    Ties break on fragment identity then position so identical runs
    produce byte-identical records.
    """
    dicts = [_site_dict(site) for site in sites]
    dicts.sort(
        key=lambda s: (
            -site_severity(s),
            s.get("loop", 0),
            s.get("fragment", 0),
            s.get("x", 0),
            s.get("y", 0),
        )
    )
    return dicts[: max(0, k)]


def _window_tuple(window: Any) -> Tuple[int, int, int, int]:
    if isinstance(window, Rect):
        return (window.x1, window.y1, window.x2, window.y2)
    x1, y1, x2, y2 = window
    return (int(x1), int(y1), int(x2), int(y2))


# -- EPE grid -----------------------------------------------------------------


def epe_grid(
    sites: Iterable[Any],
    window: Any,
    nx: int = 24,
    ny: Optional[int] = None,
) -> Dict[str, Any]:
    """Bin site EPE over ``window`` into an ``nx`` x ``ny`` grid.

    ``ny`` defaults to matching the window's aspect ratio.  Only occupied
    bins are emitted (layouts are sparse); each carries a sample count,
    missing-edge count, RMS and max |EPE|.
    """
    if nx < 1:
        raise ReproError(f"grid needs at least one column, got nx={nx}")
    x1, y1, x2, y2 = _window_tuple(window)
    width = max(1, x2 - x1)
    height = max(1, y2 - y1)
    if ny is None:
        ny = max(1, min(4 * nx, round(nx * height / width)))
    if ny < 1:
        raise ReproError(f"grid needs at least one row, got ny={ny}")

    acc: Dict[Tuple[int, int], List[float]] = {}
    for site in sites:
        data = _site_dict(site)
        x, y = data.get("x", 0), data.get("y", 0)
        if not (x1 <= x <= x2 and y1 <= y <= y2):
            continue
        ix = min(nx - 1, (x - x1) * nx // width)
        iy = min(ny - 1, (y - y1) * ny // height)
        bucket = acc.setdefault((ix, iy), [0.0, 0.0, 0.0, 0.0])
        epe = data.get("epe_nm")
        bucket[0] += 1
        if epe is None:
            bucket[1] += 1
        else:
            bucket[2] += float(epe) ** 2
            bucket[3] = max(bucket[3], abs(float(epe)))

    bins = []
    for (ix, iy), (count, missing, sum_sq, max_abs) in sorted(acc.items()):
        measured = count - missing
        rms = math.sqrt(sum_sq / measured) if measured else 0.0
        bins.append(
            {
                "ix": int(ix),
                "iy": int(iy),
                "count": int(count),
                "missing": int(missing),
                "rms_nm": round(rms, 3),
                "max_abs_nm": round(max_abs, 3),
            }
        )
    return {
        "window": [x1, y1, x2, y2],
        "nx": int(nx),
        "ny": int(ny),
        "bins": bins,
    }


# -- tile convergence from span trees -----------------------------------------


def _span_parts(
    node: Any,
) -> Tuple[str, Dict[str, Any], Sequence[Any], float]:
    """(name, attrs, children, duration_s) of a Span object or span dict."""
    if isinstance(node, dict):
        return (
            str(node.get("name", "")),
            node.get("attrs") or {},
            node.get("children") or (),
            float(node.get("duration_s") or 0.0),
        )
    return (node.name, node.attrs, node.children, node.duration_s)


def _walk_spans(node: Any) -> Iterator[Any]:
    yield node
    _name, _attrs, children, _dur = _span_parts(node)
    for child in children:
        yield from _walk_spans(child)


def tile_convergence(roots: Iterable[Any]) -> List[Dict[str, Any]]:
    """Per-tile convergence records recovered from ``opc.tile`` spans.

    Works on live :class:`~repro.obs.trace.Span` trees and on the span
    dicts stored in run records alike.  Parallel runs need no special
    casing: worker span trees are grafted under ``opc.parallel`` before
    a record is cut, so their ``opc.tile`` spans are found by the same
    walk.  Tiles are returned in tile-grid order.
    """
    tiles: List[Dict[str, Any]] = []
    for root in roots:
        for node in _walk_spans(root):
            name, attrs, children, duration = _span_parts(node)
            if name != "opc.tile":
                continue
            tiles.append(_tile_record(attrs, children, duration))
    tiles.sort(key=lambda t: t["index"])
    return tiles


def _tile_record(
    attrs: Dict[str, Any], children: Sequence[Any], duration: float
) -> Dict[str, Any]:
    curve: List[Dict[str, Any]] = []
    iterations = 0
    for child in children:
        name, model_attrs, model_children, _dur = _span_parts(child)
        if name != "opc.model":
            continue
        iterations = int(model_attrs.get("iterations", 0))
        for grand in model_children:
            it_name, it_attrs, _c, _d = _span_parts(grand)
            if it_name != "opc.iteration":
                continue
            point = {
                "iteration": int(it_attrs.get("iteration", len(curve) + 1)),
                "rms_epe_nm": round(float(it_attrs.get("rms_epe_nm", 0.0)), 3),
                "max_epe_nm": round(float(it_attrs.get("max_epe_nm", 0.0)), 3),
                "moved_fragments": int(it_attrs.get("moved_fragments", 0)),
                "missing_edges": int(it_attrs.get("missing_edges", 0)),
                "converged": bool(it_attrs.get("converged", False)),
            }
            if "max_move_nm" in it_attrs:
                point["max_move_nm"] = float(it_attrs["max_move_nm"])
            curve.append(point)
    curve.sort(key=lambda p: p["iteration"])
    if not iterations:
        iterations = len(curve)
    converged = bool(attrs.get("converged", False))
    if "converged" not in attrs and curve:
        converged = curve[-1]["converged"]
    record: Dict[str, Any] = {
        "index": int(attrs.get("tile", 0)),
        "rect": [
            int(attrs.get("x1", 0)),
            int(attrs.get("y1", 0)),
            int(attrs.get("x2", 0)),
            int(attrs.get("y2", 0)),
        ],
        "fragments": int(attrs.get("fragments", 0)),
        "iterations": iterations,
        "converged": converged,
        "runtime_s": round(duration, 6),
        "curve": curve,
    }
    if curve:
        record["final_rms_nm"] = curve[-1]["rms_epe_nm"]
        record["final_max_nm"] = curve[-1]["max_epe_nm"]
    return record


# -- the combined payload -----------------------------------------------------


def spatial_summary(
    roots: Iterable[Any] = (),
    sites: Iterable[Any] = (),
    window: Any = None,
    top_k: int = 10,
    bins: int = 24,
) -> Dict[str, Any]:
    """The full spatial payload a run record carries.

    ``roots`` are trace roots (spans or span dicts) to mine for tile
    convergence; ``sites`` are verification EPE sites.  ``window``
    defaults to the bounding box of the sites, falling back to the tile
    extents.  The result is JSON-ready and deterministic for identical
    runs except for the per-tile ``runtime_s`` values, which
    :func:`canonical_spatial` strips.
    """
    site_dicts = [_site_dict(site) for site in sites]
    tiles = tile_convergence(roots)
    if window is None:
        window = _derive_window(site_dicts, tiles)
    payload: Dict[str, Any] = {
        "version": SPATIAL_VERSION,
        "window": list(_window_tuple(window)) if window is not None else None,
        "site_count": len(site_dicts),
        "missing_sites": sum(
            1 for s in site_dicts if s.get("epe_nm") is None
        ),
        "worst_sites": worst_site_dicts(site_dicts, top_k),
        "epe_grid": (
            epe_grid(site_dicts, window, nx=bins)
            if site_dicts and window is not None
            else None
        ),
        "tiles": tiles,
        "tiles_converged": sum(1 for t in tiles if t["converged"]),
        "tiles_stalled": sum(1 for t in tiles if not t["converged"]),
    }
    return payload


def _derive_window(
    site_dicts: Sequence[Dict[str, Any]], tiles: Sequence[Dict[str, Any]]
) -> Optional[Tuple[int, int, int, int]]:
    xs = [s["x"] for s in site_dicts if "x" in s]
    ys = [s["y"] for s in site_dicts if "y" in s]
    for tile in tiles:
        x1, y1, x2, y2 = tile["rect"]
        if (x1, y1) != (x2, y2):
            xs.extend((x1, x2))
            ys.extend((y1, y2))
    if not xs:
        return None
    return (min(xs), min(ys), max(xs), max(ys))


def canonical_spatial(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The payload minus wall-clock noise, for byte-stable canonical records."""
    stable = dict(payload)
    stable["tiles"] = [
        {k: v for k, v in tile.items() if k not in _VOLATILE_TILE_KEYS}
        for tile in payload.get("tiles", ())
    ]
    return stable


def spatial_quality(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Quality-metric entries derived from a spatial payload."""
    quality: Dict[str, Any] = {}
    if payload.get("tiles"):
        quality["tiles_converged"] = payload["tiles_converged"]
        quality["tiles_stalled"] = payload["tiles_stalled"]
    if payload.get("site_count"):
        quality["missing_sites"] = payload["missing_sites"]
    return quality


# -- owning-cell attribution --------------------------------------------------


def cell_owner_index(top: Any) -> GridIndex:
    """Spatial index of every placed cell's bounding box under ``top``.

    Items are ``(name, depth, area)`` tuples; deeper (then smaller)
    placements win attribution, matching how a layout engineer reads a
    hierarchy: the worst site is *in* the bit cell, not "in the chip".
    """
    placements: List[Tuple[Rect, Tuple[str, int, int]]] = []

    def collect(cell: Any, transform: Transform, depth: int) -> None:
        box = cell.bbox(recursive=True)
        if box is not None:
            placed = transform.apply_rect(box)
            placements.append((placed, (cell.name, depth, placed.area)))
        for ref in cell.references:
            for place in ref.placements():
                collect(ref.cell, place.then(transform), depth + 1)

    collect(top, Transform.identity(), 0)
    if not placements:
        raise ReproError(f"cell {top.name!r} has no geometry to attribute against")
    span = max(
        max(box.width for box, _ in placements),
        max(box.height for box, _ in placements),
    )
    index: GridIndex = GridIndex(cell_size=max(1, span // 16))
    index.insert_all(placements)
    return index


def attribute_sites(sites: Sequence[Any], top: Any) -> List[Any]:
    """Copy of ``sites`` with ``cell`` set to each site's owning cell.

    Sites may be EPESite objects (returned re-created via
    ``dataclasses.replace``) or dicts (returned as updated copies).
    Anchors outside every placement fall back to the top cell's name.
    """
    from dataclasses import replace as _replace

    index = cell_owner_index(top)
    out: List[Any] = []
    for site in sites:
        data = _site_dict(site)
        x, y = int(data.get("x", 0)), int(data.get("y", 0))
        probe = Rect(x, y, x + 1, y + 1)
        owner = top.name
        best = (-1, float("inf"))  # (depth, area): deepest then smallest
        for box, (name, depth, area) in index.query(probe):
            if not box.contains((x, y)):
                continue
            if (depth, -area) > (best[0], -best[1]):
                best = (depth, area)
                owner = name
        if isinstance(site, dict):
            updated: Any = dict(site, cell=owner)
        else:
            updated = _replace(site, cell=owner)
        out.append(updated)
    return out


# -- SVG rendering ------------------------------------------------------------

_RAMP_LOW = (247, 247, 245)
_RAMP_HIGH = (178, 24, 43)


def _ramp(t: float) -> str:
    t = max(0.0, min(1.0, t))
    return "#%02x%02x%02x" % tuple(
        round(lo + t * (hi - lo)) for lo, hi in zip(_RAMP_LOW, _RAMP_HIGH)
    )


def hotspot_svg(payload: Dict[str, Any], width: int = 900) -> str:
    """Render a spatial payload as a standalone SVG hotspot map.

    Layers, back to front: the binned |EPE| heatmap (white -> red by RMS),
    tile outlines colored by convergence (solid green = converged, dashed
    orange = stalled), and numbered markers on the worst sites (circles
    for measured errors, crosses for missing edges).  Layout y grows
    upward; SVG y grows downward, so the map is flipped to read like a
    layout plot.
    """
    window = payload.get("window")
    if not window:
        return (
            '<svg xmlns="http://www.w3.org/2000/svg" width="400" height="60">'
            '<text x="10" y="35" font-family="sans-serif" font-size="14">'
            "no spatial data recorded</text></svg>"
        )
    x1, y1, x2, y2 = window
    span_x = max(1, x2 - x1)
    span_y = max(1, y2 - y1)
    margin, top, right = 46, 54, 170
    plot_w = max(100, width - margin - right)
    plot_h = max(160, min(1200, round(plot_w * span_y / span_x)))
    height = plot_h + top + margin
    scale_x = plot_w / span_x
    scale_y = plot_h / span_y

    def sx(x: float) -> float:
        return margin + (x - x1) * scale_x

    def sy(y: float) -> float:
        return top + plot_h - (y - y1) * scale_y

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="white"/>',
        f'<rect x="{margin}" y="{top}" width="{plot_w}" height="{plot_h}" '
        'fill="#fbfbfa" stroke="#888"/>',
    ]
    title = (
        f"EPE hotspot map — {payload.get('site_count', 0)} sites, "
        f"{payload.get('tiles_converged', 0)}/{len(payload.get('tiles', []))} "
        "tiles converged"
    )
    if payload.get("mrc"):
        title += f", {len(payload['mrc'])} MRC markers"
    parts.append(
        f'<text x="{margin}" y="24" font-size="15" font-weight="bold">'
        f"{_escape(title)}</text>"
    )
    parts.append(
        f'<text x="{margin}" y="42" font-size="11" fill="#555">window '
        f"[{x1}, {y1}] — [{x2}, {y2}] nm</text>"
    )

    grid = payload.get("epe_grid")
    vmax = 0.0
    if grid and grid.get("bins"):
        vmax = max(
            max(b["rms_nm"] for b in grid["bins"]),
            max(float(b["missing"] > 0) for b in grid["bins"]),
            1e-9,
        )
        cell_w = span_x / grid["nx"] * scale_x
        cell_h = span_y / grid["ny"] * scale_y
        for b in grid["bins"]:
            gx = margin + b["ix"] * span_x / grid["nx"] * scale_x
            gy = top + plot_h - (b["iy"] + 1) * span_y / grid["ny"] * scale_y
            heat = 1.0 if b["missing"] else b["rms_nm"] / vmax
            parts.append(
                f'<rect x="{gx:.1f}" y="{gy:.1f}" width="{cell_w:.1f}" '
                f'height="{cell_h:.1f}" fill="{_ramp(heat)}">'
                f"<title>{b['count']} sites, rms {b['rms_nm']} nm, "
                f"max {b['max_abs_nm']} nm, {b['missing']} missing</title>"
                "</rect>"
            )

    for tile in payload.get("tiles", ()):  # outlines above the heat bins
        tx1, ty1, tx2, ty2 = tile["rect"]
        if (tx1, ty1) == (tx2, ty2):
            continue
        style = (
            'stroke="#2c7a43" stroke-width="1.5"'
            if tile["converged"]
            else 'stroke="#d97706" stroke-width="2" stroke-dasharray="6,3"'
        )
        parts.append(
            f'<rect x="{sx(tx1):.1f}" y="{sy(ty2):.1f}" '
            f'width="{(tx2 - tx1) * scale_x:.1f}" '
            f'height="{(ty2 - ty1) * scale_y:.1f}" fill="none" {style}>'
            f"<title>tile {tile['index']}: {tile['iterations']} iterations, "
            f"{'converged' if tile['converged'] else 'stalled'}</title></rect>"
        )
        parts.append(
            f'<text x="{sx(tx1) + 4:.1f}" y="{sy(ty2) + 13:.1f}" '
            f'font-size="10" fill="#666">{tile["index"]}</text>'
        )

    for violation in payload.get("mrc", ()):
        mx1, my1, mx2, my2 = violation.get("marker", (0, 0, 0, 0))
        vw = max(3.0, (mx2 - mx1) * scale_x)
        vh = max(3.0, (my2 - my1) * scale_y)
        color = "#b2182b" if violation.get("severity") == "error" else "#d97706"
        tip = (
            f"{violation.get('rule_id', 'MRC?')} {violation.get('kind', '')}: "
            f"{violation.get('measured_nm', '?')} nm vs "
            f"{violation.get('limit_nm', '?')} nm limit"
        )
        parts.append(
            f'<rect x="{sx(mx1):.1f}" y="{sy(my2):.1f}" width="{vw:.1f}" '
            f'height="{vh:.1f}" fill="{color}" fill-opacity="0.35" '
            f'stroke="{color}" stroke-width="1.5">'
            f"<title>{_escape(tip)}</title></rect>"
        )

    for rank, site in enumerate(payload.get("worst_sites", ()), start=1):
        cx, cy = sx(site["x"]), sy(site["y"])
        if site.get("epe_nm") is None:
            label = f"missing ({site.get('state', '?')})"
            parts.append(
                f'<path d="M {cx - 5:.1f} {cy - 5:.1f} L {cx + 5:.1f} '
                f'{cy + 5:.1f} M {cx - 5:.1f} {cy + 5:.1f} L {cx + 5:.1f} '
                f'{cy - 5:.1f}" stroke="#7b1fa2" stroke-width="2.5"/>'
            )
        else:
            label = f"{site['epe_nm']:+.2f} nm"
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="6" fill="none" '
                'stroke="#b2182b" stroke-width="2"/>'
            )
        owner = f" [{site['cell']}]" if site.get("cell") else ""
        parts.append(
            f'<text x="{cx + 8:.1f}" y="{cy + 4:.1f}" font-size="10" '
            f'fill="#333">{rank}<title>#{rank} ({site["x"]}, {site["y"]}) '
            f"{_escape(site.get('tag', ''))} {_escape(label)}"
            f"{_escape(owner)}</title></text>"
        )

    # Legend: color ramp + marker key.
    lx = margin + plot_w + 16
    parts.append(
        f'<text x="{lx}" y="{top + 10}" font-size="11" '
        'font-weight="bold">bin RMS EPE</text>'
    )
    steps = 8
    for i in range(steps):
        parts.append(
            f'<rect x="{lx}" y="{top + 18 + i * 14}" width="18" height="14" '
            f'fill="{_ramp((steps - i) / steps)}" stroke="#999" '
            'stroke-width="0.3"/>'
        )
        parts.append(
            f'<text x="{lx + 24}" y="{top + 29 + i * 14}" font-size="10" '
            f'fill="#555">{vmax * (steps - i) / steps:.2f} nm</text>'
        )
    key_y = top + 18 + steps * 14 + 20
    for dy, swatch, text in (
        (0, '<circle cx="9" cy="-4" r="6" fill="none" stroke="#b2182b" '
            'stroke-width="2"/>', "worst site"),
        (18, '<path d="M 4 -9 L 14 1 M 4 1 L 14 -9" stroke="#7b1fa2" '
             'stroke-width="2.5"/>', "missing edge"),
        (36, '<rect x="2" y="-10" width="14" height="10" fill="none" '
             'stroke="#2c7a43" stroke-width="1.5"/>', "tile converged"),
        (54, '<rect x="2" y="-10" width="14" height="10" fill="none" '
             'stroke="#d97706" stroke-width="2" stroke-dasharray="6,3"/>',
         "tile stalled"),
        (72, '<rect x="2" y="-10" width="14" height="10" fill="#b2182b" '
             'fill-opacity="0.35" stroke="#b2182b" stroke-width="1.5"/>',
         "MRC violation"),
    ):
        parts.append(f'<g transform="translate({lx},{key_y + dy})">{swatch}'
                     f'<text x="24" y="0" font-size="10">{text}</text></g>')

    parts.append("</svg>")
    return "".join(parts)


def write_hotspot_svg(path: Any, payload: Dict[str, Any]) -> None:
    """Write :func:`hotspot_svg` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(hotspot_svg(payload))
        handle.write("\n")


# -- inspector HTML -----------------------------------------------------------

_INSPECT_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #222; max-width: 1100px; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { border: 1px solid #ccc; padding: 3px 9px; text-align: right; }
th { background: #f0f0ee; } td.t { text-align: left; }
.meta { color: #555; font-size: 0.9em; }
.stalled { color: #b45309; font-weight: bold; }
.converged { color: #15803d; }
.missing { color: #7b1fa2; font-weight: bold; }
"""


def inspect_html(record: Any) -> str:
    """A self-contained inspector page for one run record.

    ``record`` is duck-typed (:class:`~repro.obs.runs.RunRecord` or
    anything with the same attributes).  Pre-spatial (schema ``repro-run/1``)
    records render with a note instead of the map.
    """
    run_id = getattr(record, "run_id", "?")
    payload = getattr(record, "spatial", None)
    rows = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>repro inspect — {_escape(str(run_id))}</title>",
        f"<style>{_INSPECT_CSS}</style></head><body>",
        f"<h1>repro inspect — run <code>{_escape(str(run_id))}</code></h1>",
        "<p class='meta'>"
        f"label <b>{_escape(str(getattr(record, 'label', '?')))}</b>"
        f" · recorded {_escape(str(getattr(record, 'timestamp', '?')))}"
        f" · wall {float(getattr(record, 'wall_s', 0.0)):.2f} s"
        "</p>",
    ]
    quality = getattr(record, "quality", None) or {}
    if quality:
        rows.append("<h2>Quality</h2><table><tr>")
        rows.extend(f"<th>{_escape(str(k))}</th>" for k in sorted(quality))
        rows.append("</tr><tr>")
        rows.extend(
            f"<td>{_fmt_value(quality[k])}</td>" for k in sorted(quality)
        )
        rows.append("</tr></table>")

    if not payload:
        rows.append(
            "<p>This record predates spatial diagnostics (schema "
            "<code>repro-run/1</code>) or was captured without "
            "verification sites — no hotspot map available.</p>"
        )
    else:
        rows.append("<h2>Hotspot map</h2>")
        rows.append(hotspot_svg(payload))
        rows.append("<h2>Worst EPE sites</h2>")
        rows.append(_worst_sites_table(payload.get("worst_sites", ())))
        if payload.get("mrc"):
            rows.append("<h2>MRC violations</h2>")
            rows.append(_mrc_table(payload["mrc"]))
        tiles = payload.get("tiles", ())
        if tiles:
            rows.append("<h2>Tile convergence</h2>")
            rows.append(_tiles_table(tiles))
    rows.append("</body></html>")
    return "\n".join(rows)


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return _escape(str(value))


def _worst_sites_table(sites: Sequence[Dict[str, Any]]) -> str:
    if not sites:
        return "<p>No EPE sites recorded.</p>"
    rows = [
        "<table><tr><th>#</th><th>x (nm)</th><th>y (nm)</th><th>cell</th>"
        "<th>tag</th><th>EPE (nm)</th><th>state</th></tr>"
    ]
    for rank, site in enumerate(sites, start=1):
        epe = site.get("epe_nm")
        epe_cell = (
            "<td class='missing'>—</td>" if epe is None
            else f"<td>{epe:+.2f}</td>"
        )
        state = site.get("state", "found")
        state_class = " class='missing'" if epe is None else ""
        rows.append(
            f"<tr><td>{rank}</td><td>{site.get('x')}</td>"
            f"<td>{site.get('y')}</td>"
            f"<td class='t'>{_escape(str(site.get('cell') or '—'))}</td>"
            f"<td class='t'>{_escape(str(site.get('tag', '')))}</td>"
            f"{epe_cell}<td class='t'{state_class}>{_escape(state)}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _mrc_table(violations: Sequence[Dict[str, Any]]) -> str:
    rows = [
        "<table><tr><th>rule</th><th>kind</th><th>marker (nm)</th>"
        "<th>measured</th><th>limit</th><th>cell</th><th>severity</th></tr>"
    ]
    for violation in violations:
        x1, y1, x2, y2 = violation.get("marker", (0, 0, 0, 0))
        severity = str(violation.get("severity", "error"))
        severity_class = " missing" if severity == "error" else ""
        rows.append(
            f"<tr><td class='t'>{_escape(str(violation.get('rule_id', '?')))}</td>"
            f"<td class='t'>{_escape(str(violation.get('kind', '?')))}</td>"
            f"<td class='t'>[{x1}, {y1}] — [{x2}, {y2}]</td>"
            f"<td>{_fmt_value(violation.get('measured_nm', '?'))}</td>"
            f"<td>{_fmt_value(violation.get('limit_nm', '?'))}</td>"
            f"<td class='t'>{_escape(str(violation.get('cell') or '—'))}</td>"
            f"<td class='t{severity_class}'>{_escape(severity)}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _tiles_table(tiles: Sequence[Dict[str, Any]]) -> str:
    rows = [
        "<table><tr><th>tile</th><th>rect (nm)</th><th>fragments</th>"
        "<th>iterations</th><th>final RMS</th><th>final max</th>"
        "<th>runtime (s)</th><th>status</th></tr>"
    ]
    for tile in tiles:
        x1, y1, x2, y2 = tile["rect"]
        status = (
            "<td class='converged t'>converged</td>"
            if tile["converged"]
            else "<td class='stalled t'>stalled</td>"
        )
        rows.append(
            f"<tr><td>{tile['index']}</td>"
            f"<td class='t'>[{x1}, {y1}] — [{x2}, {y2}]</td>"
            f"<td>{tile.get('fragments', 0)}</td>"
            f"<td>{tile['iterations']}</td>"
            f"<td>{tile.get('final_rms_nm', '—')}</td>"
            f"<td>{tile.get('final_max_nm', '—')}</td>"
            f"<td>{tile.get('runtime_s', 0.0):.3f}</td>"
            f"{status}</tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def write_inspect_html(path: Any, record: Any) -> None:
    """Write :func:`inspect_html` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(inspect_html(record))
        handle.write("\n")
