"""Zero-dependency hierarchical span tracer.

A *span* is one timed piece of work with a name, wall-clock duration and
free-form attributes; spans nest, so a tape-out run produces a tree::

    tapeout
    ├── tapeout.retarget
    ├── tapeout.correct
    │   └── correct
    │       └── opc.tile  (per tile)
    │           └── opc.model
    │               └── opc.iteration  (per iteration)
    ...

The span stack is thread-local: concurrent workers each grow their own
tree and finished root spans are collected per thread.  Spans always
measure their duration (two ``perf_counter`` reads) even when recording
is disabled, because callers such as ``FlowResult.runtime_s`` derive
runtimes from them -- but disabled spans never touch the stack, never
link to a parent and drop their attributes, so the disabled-state cost
is one small allocation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Sequence

from . import events as _events
from . import state


class Span:
    """One timed, attributed node of a trace tree."""

    __slots__ = ("name", "attrs", "children", "start_s", "end_s", "recorded")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None,
                 recorded: bool = True):
        self.name = name
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.children: List["Span"] = []
        self.start_s: float = 0.0
        self.end_s: Optional[float] = None
        self.recorded = recorded

    # -- timing ---------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Elapsed wall time (up to now for a still-open span)."""
        end = self.end_s if self.end_s is not None else perf_counter()
        return end - self.start_s

    # -- attributes -----------------------------------------------------------

    def set(self, **attrs: Any) -> None:
        """Attach attributes; a no-op on spans created while disabled."""
        if self.recorded:
            self.attrs.update(attrs)

    # -- tree queries ---------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with ``name``, pre-order."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every descendant (or self) with ``name``, pre-order."""
        return [span for span in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.2f} ms, "
            f"{len(self.children)} children)"
        )


_tls = threading.local()

#: Every thread's span stack, keyed by thread ident -- the one view of
#: the thread-local stacks a *different* thread (the sampling profiler,
#: :mod:`repro.obs.prof`) can read.  Stacks are registered on first use
#: and only ever mutated by their owning thread; readers take snapshot
#: copies, so the GIL is the only synchronisation needed.
_thread_stacks: Dict[int, List[Span]] = {}


def _stack() -> List[Span]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
        _thread_stacks[threading.get_ident()] = stack
    return stack


def open_span_paths() -> Dict[int, str]:
    """``{thread_ident: "root/child/..."}`` for threads with open spans.

    The cross-thread hook the sampling profiler uses to tag stack samples
    with the span path that was open when the sample was taken.  Threads
    with no open span are omitted.  Reads race benignly with span
    open/close on other threads: each stack is copied before use, so the
    worst case is a path one span stale.
    """
    paths: Dict[int, str] = {}
    for ident, stack in list(_thread_stacks.items()):
        names = [span_node.name for span_node in list(stack)]
        if names:
            paths[ident] = "/".join(names)
    return paths


def reset_worker_state() -> None:
    """Fresh span state for a forked pool worker.

    A ``fork`` child inherits the parent's thread-local stack mid-capture
    *and* the cross-thread registry above, whose dead-thread idents could
    alias new worker threads and mis-tag profiler samples.  Pool
    initializers call this (single-threaded, so clearing is safe) so
    worker spans root cleanly and samples tag only worker spans.
    """
    _thread_stacks.clear()
    _tls.stack = []
    _tls.finished = []
    _thread_stacks[threading.get_ident()] = _tls.stack


def _finished() -> List[Span]:
    finished = getattr(_tls, "finished", None)
    if finished is None:
        finished = _tls.finished = []
    return finished


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def take_finished() -> List[Span]:
    """Pop (return and clear) this thread's finished root spans."""
    finished = _finished()
    _tls.finished = []
    return finished


def merge_spans(
    parent: Optional[Span],
    roots: Sequence[Span],
    rebase: bool = True,
) -> None:
    """Graft finished root spans from another thread or process into a tree.

    ``roots`` (typically reconstructed from a worker's serialized trace)
    become children of ``parent``, preserving their internal parent/child
    nesting and every span's wall-clock duration.  ``parent=None`` grafts
    under this thread's innermost open span, or -- with no span open --
    collects the roots as finished roots of this thread.

    ``rebase`` shifts the adopted trees so the earliest root starts at the
    parent's start time: ``perf_counter`` origins are process-specific, so
    raw worker timestamps are meaningless in the parent's timeline.
    Relative offsets between roots of one merge call are preserved.
    """
    if not roots:
        return
    if parent is None:
        parent = current_span()
    if rebase:
        origin = min(root.start_s for root in roots)
        anchor = parent.start_s if parent is not None else origin
        for root in roots:
            _shift_tree(root, anchor - origin)
    if parent is not None:
        parent.children.extend(roots)
    else:
        _finished().extend(roots)


def _shift_tree(span_node: Span, delta_s: float) -> None:
    span_node.start_s += delta_s
    if span_node.end_s is not None:
        span_node.end_s += delta_s
    for child in span_node.children:
        _shift_tree(child, delta_s)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span]:
    """Open a span named ``name`` around the ``with`` body.

    When recording is enabled the span is pushed on the thread's stack and
    linked under the current parent (or collected as a finished root).
    When disabled it still measures wall time -- callers may read
    ``duration_s`` either way -- but records nothing else.

    Pipeline-stage spans (:data:`repro.obs.events.PHASE_SPANS`) also
    report ``phase.start`` / ``phase.end`` on the live event bus when a
    sink is attached, independent of whether span recording is on.
    """
    phased = _events._active and name in _events.PHASE_SPANS
    if not state.enabled():
        unrecorded = Span(name, recorded=False)
        unrecorded.start_s = perf_counter()
        if phased:
            _events.emit("phase.start", name=name)
        try:
            yield unrecorded
        finally:
            unrecorded.end_s = perf_counter()
            if phased:
                _events.emit(
                    "phase.end",
                    name=name,
                    duration_s=round(unrecorded.duration_s, 6),
                )
        return

    current = Span(name, dict(attrs))
    stack = _stack()
    parent = stack[-1] if stack else None
    stack.append(current)
    current.start_s = perf_counter()
    if phased:
        _events.emit("phase.start", name=name)
    try:
        yield current
    finally:
        current.end_s = perf_counter()
        popped = stack.pop()
        assert popped is current, "span stack corrupted"
        if parent is not None:
            parent.children.append(current)
        else:
            _finished().append(current)
        if phased:
            _events.emit(
                "phase.end", name=name, duration_s=round(current.duration_s, 6)
            )
