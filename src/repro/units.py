"""Unit conventions and conversions.

The layout database uses integer *database units* (dbu) with 1 dbu = 1 nm,
the convention used throughout this library.  Lithography computations use
float nanometres.  These helpers centralise the conversions and guard
against silent unit mistakes.
"""

from __future__ import annotations

#: Database units per nanometre (the library convention: 1 dbu == 1 nm).
DBU_PER_NM: int = 1

#: Nanometres per micron.
NM_PER_UM: float = 1000.0

#: Metres per database unit, as written into GDSII UNITS records.
METERS_PER_DBU: float = 1e-9


def nm(value: float) -> int:
    """Convert a length in nanometres to integer database units.

    Values are rounded to the nearest dbu; use this at API boundaries where
    users supply float nanometre quantities.

    >>> nm(180.4)
    180
    """
    return round(value * DBU_PER_NM)


def um(value: float) -> int:
    """Convert a length in microns to integer database units.

    >>> um(1.28)
    1280
    """
    return round(value * NM_PER_UM * DBU_PER_NM)


def to_nm(dbu: int) -> float:
    """Convert database units to float nanometres."""
    return dbu / DBU_PER_NM


def to_um(dbu: int) -> float:
    """Convert database units to float microns."""
    return dbu / (DBU_PER_NM * NM_PER_UM)
