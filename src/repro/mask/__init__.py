"""Mask data preparation: fracture and data-volume accounting.

Public surface: :func:`mask_data_stats`, :class:`MaskDataStats`,
:class:`DataGrowth`, :func:`write_time_estimate_s`, plus the fracture
primitives re-exported from the geometry kernel.
"""

from ..geometry import decompose_max_rects, fracture
from .cost import MaskCostModel
from .datavolume import (
    DEFAULT_MAX_FIGURE_NM,
    SHOT_RECORD_BYTES,
    DataGrowth,
    MaskDataStats,
    mask_data_stats,
    write_time_estimate_s,
)

__all__ = [
    "DEFAULT_MAX_FIGURE_NM",
    "DataGrowth",
    "MaskCostModel",
    "MaskDataStats",
    "SHOT_RECORD_BYTES",
    "decompose_max_rects",
    "fracture",
    "mask_data_stats",
    "write_time_estimate_s",
]
