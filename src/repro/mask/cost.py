"""Mask cost model: what the data explosion costs in dollars and hours.

A deliberately simple but structurally correct 2001-era reticle cost
model: a fixed blank/process base, a write-time component proportional to
shot count, and an inspection component proportional to figure count.
The point is not the absolute dollars (set the coefficients to taste) but
the *relative* cost growth across correction levels, which tracks the
measured data volume directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from .datavolume import MaskDataStats


@dataclass(frozen=True)
class MaskCostModel:
    """Cost coefficients for one reticle generation."""

    base_usd: float = 8_000.0  # blank, resist, process overhead
    writer_usd_per_hour: float = 2_500.0
    shots_per_second: float = 50_000.0
    inspection_usd_per_megafigure: float = 1_500.0
    yield_loss_factor: float = 1.15  # rework/repair multiplier

    def __post_init__(self) -> None:
        if min(
            self.base_usd,
            self.writer_usd_per_hour,
            self.shots_per_second,
            self.inspection_usd_per_megafigure,
        ) <= 0:
            raise ReproError("cost coefficients must be positive")
        if self.yield_loss_factor < 1.0:
            raise ReproError("yield loss factor must be >= 1")

    def write_hours(self, stats: MaskDataStats) -> float:
        """Writer time for the layer's shot count."""
        return stats.shots / self.shots_per_second / 3600.0

    def cost_usd(self, stats: MaskDataStats) -> float:
        """Total single-layer reticle cost."""
        write = self.write_hours(stats) * self.writer_usd_per_hour
        inspection = (
            stats.figures / 1e6 * self.inspection_usd_per_megafigure
        )
        return (self.base_usd + write + inspection) * self.yield_loss_factor

    def cost_ratio(self, stats: MaskDataStats, baseline: MaskDataStats) -> float:
        """Cost growth relative to an uncorrected baseline."""
        return self.cost_usd(stats) / self.cost_usd(baseline)
