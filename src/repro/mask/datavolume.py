"""Mask data-volume models: the paper's headline cost of OPC adoption.

Three sizes matter to a 2001 tape-out:

* figure/vertex counts of the layout database (designer's view),
* writer shots after fracture (mask shop's exposure time), and
* bytes on disk/tape (the data-handling crisis OPC triggered).

The byte model counts real GDSII bytes via the codec; the writer model
fractures to rectangles under a maximum figure size and charges a fixed
record size per shot, the structure of MEBES/VSB formats.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..geometry import Region, fracture
from ..layout import GDSWriter, Layer, Library

#: Bytes per writer shot record (trapezoid: type + 4 coordinates, packed).
SHOT_RECORD_BYTES = 16

#: Default maximum writer figure size at wafer scale (2 um).
DEFAULT_MAX_FIGURE_NM = 2000


@dataclass(frozen=True)
class MaskDataStats:
    """Size of one mask layer's data."""

    figures: int  # database figures (polygon loops)
    vertices: int  # database vertices
    shots: int  # writer shots after fracture
    writer_bytes: int  # shots * record size
    gds_bytes: int  # actual serialised GDSII size

    def ratio_to(self, baseline: "MaskDataStats") -> "DataGrowth":
        """Growth factors relative to an uncorrected baseline."""
        return DataGrowth(
            figures=_ratio(self.figures, baseline.figures),
            vertices=_ratio(self.vertices, baseline.vertices),
            shots=_ratio(self.shots, baseline.shots),
            bytes=_ratio(self.gds_bytes, baseline.gds_bytes),
        )


@dataclass(frozen=True)
class DataGrowth:
    """Multiplicative growth of each size metric."""

    figures: float
    vertices: float
    shots: float
    bytes: float

    def __str__(self) -> str:
        return (
            f"figures x{self.figures:.2f}, vertices x{self.vertices:.2f}, "
            f"shots x{self.shots:.2f}, bytes x{self.bytes:.2f}"
        )


def mask_data_stats(
    geometry: Region,
    layer: Layer = Layer(1, 0, "mask"),
    max_figure_nm: int = DEFAULT_MAX_FIGURE_NM,
) -> MaskDataStats:
    """Measure one mask layer's data sizes.

    ``geometry`` is merged first (mask data is flat); GDS bytes measure the
    single-cell stream holding exactly this geometry.
    """
    if max_figure_nm <= 0:
        raise ReproError(f"max figure size must be positive, got {max_figure_nm}")
    merged = geometry.merged()
    shots = len(fracture(merged, max_figure_nm)) if not merged.is_empty else 0
    library = Library("maskdata")
    cell = library.new_cell("mask")
    if not merged.is_empty:
        cell.set_region(layer, merged)
    gds_bytes = len(GDSWriter().to_bytes(library))
    return MaskDataStats(
        figures=merged.num_loops,
        vertices=merged.num_vertices,
        shots=shots,
        writer_bytes=shots * SHOT_RECORD_BYTES,
        gds_bytes=gds_bytes,
    )


def write_time_estimate_s(
    stats: MaskDataStats, shots_per_second: float = 50_000.0
) -> float:
    """Writer exposure time from the shot count (VSB-class throughput)."""
    if shots_per_second <= 0:
        raise ReproError("shot rate must be positive")
    return stats.shots / shots_per_second


def _ratio(value: float, baseline: float) -> float:
    return value / baseline if baseline else float("inf")
