"""Printed-gate timing: from lithography CDs to gate delays.

The paper-era argument: timing sign-off uses *drawn* gate length, but the
silicon switches at the *printed* gate length.  The alpha-power MOSFET
model turns each printed CD into a drive current and each gate into a
delay; distributions over many gates quantify both the mean shift and the
spread that proximity effects (and their correction) cause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..geometry import Rect
from ..litho import LithoSimulator, MaskSpec


@dataclass(frozen=True)
class DeviceModel:
    """Alpha-power-law device parameters (180 nm-era values)."""

    vdd: float = 1.8
    vth: float = 0.45
    alpha: float = 1.3  # velocity-saturation exponent
    k_per_um: float = 320e-6  # A/um of gate width at nominal drive
    gate_cap_per_um: float = 1.8e-15  # F/um of gate width
    wire_cap: float = 2.0e-15  # F fixed load per stage
    #: Vth roll-off strength: dVth = -vth * vth_rolloff * dL/L (lumped SCE).
    vth_rolloff: float = 0.5

    def __post_init__(self) -> None:
        if self.vdd <= self.vth:
            raise ReproError("vdd must exceed vth")
        if self.alpha <= 0 or self.k_per_um <= 0:
            raise ReproError("model parameters must be positive")
        if not 0 <= self.vth_rolloff <= 1:
            raise ReproError("vth roll-off must be in [0, 1]")

    def drive_current(self, width_um: float, printed_l_nm: float,
                      drawn_l_nm: float) -> float:
        """Saturation drive at the printed channel length, in amperes.

        First-order: drive scales inversely with channel length, and the
        threshold rolls off as L shrinks below drawn (a lumped short-
        channel term), so under-printed gates are faster and leakier --
        enough structure to rank timing without a full BSIM.
        """
        if printed_l_nm <= 0:
            raise ReproError(f"printed gate length must be positive, got {printed_l_nm}")
        vth = self.vth * (
            1.0 - self.vth_rolloff * (drawn_l_nm - printed_l_nm) / drawn_l_nm
        )
        overdrive = max(self.vdd - vth, 1e-3)
        return (
            self.k_per_um
            * width_um
            * (drawn_l_nm / printed_l_nm)
            * (overdrive / (self.vdd - self.vth)) ** self.alpha
        )

    def gate_delay(
        self,
        printed_l_nm: float,
        drawn_l_nm: float,
        width_um: float = 1.0,
        fanout: float = 3.0,
    ) -> float:
        """One inverter-stage delay in seconds at the printed gate length."""
        load = fanout * self.gate_cap_per_um * width_um + self.wire_cap
        current = self.drive_current(width_um, printed_l_nm, drawn_l_nm)
        return load * self.vdd / (2.0 * current)

    def leakage_ratio(
        self, printed_l_nm: float, drawn_l_nm: float,
        subthreshold_slope_mv: float = 90.0,
    ) -> float:
        """Off-current relative to the drawn-length device.

        Subthreshold current is exponential in Vth; the same roll-off term
        that speeds an under-printed gate multiplies its leakage.  A CD
        distribution's leakage is therefore dominated by its short tail --
        the standby-power reason CD control tightened at 180 nm.
        """
        if printed_l_nm <= 0:
            raise ReproError("printed gate length must be positive")
        if subthreshold_slope_mv <= 0:
            raise ReproError("subthreshold slope must be positive")
        roll_off_v = (
            self.vth * self.vth_rolloff * (drawn_l_nm - printed_l_nm) / drawn_l_nm
        )
        thermal = subthreshold_slope_mv / 1000.0 / 2.3026  # slope -> kT/q-ish
        import math

        return math.exp(roll_off_v / thermal)


@dataclass(frozen=True)
class TimingDistribution:
    """Delay statistics over a population of gates."""

    delays_ps: Tuple[float, ...]

    @classmethod
    def from_cds(
        cls,
        printed_cds_nm: Sequence[float],
        drawn_l_nm: float,
        model: DeviceModel = DeviceModel(),
    ) -> "TimingDistribution":
        """Per-gate delays from printed CDs."""
        if not printed_cds_nm:
            raise ReproError("need at least one printed CD")
        return cls(
            tuple(
                model.gate_delay(cd, drawn_l_nm) * 1e12 for cd in printed_cds_nm
            )
        )

    @property
    def mean_ps(self) -> float:
        """Mean stage delay."""
        return float(np.mean(self.delays_ps))

    @property
    def sigma_ps(self) -> float:
        """Stage-delay standard deviation (the proximity-induced spread)."""
        return float(np.std(self.delays_ps))

    @property
    def worst_ps(self) -> float:
        """Slowest stage."""
        return float(np.max(self.delays_ps))

    def path_delay_ps(self, stages: int = 10) -> float:
        """Worst-case delay of a path of ``stages`` slowest gates."""
        ordered = sorted(self.delays_ps, reverse=True)
        picked = ordered[: min(stages, len(ordered))]
        scale = stages / len(picked)
        return float(sum(picked) * scale)

    def ring_oscillator_mhz(self, stages: int = 31) -> float:
        """RO frequency using the mean stage delay."""
        period_ps = 2.0 * stages * self.mean_ps
        return 1e6 / period_ps


def population_leakage_ratio(
    printed_cds_nm: Sequence[float],
    drawn_l_nm: float,
    model: DeviceModel = DeviceModel(),
) -> float:
    """Mean leakage of a CD population relative to all-drawn devices.

    The exponential CD-to-leakage mapping makes this tail-dominated: a few
    under-printed gates multiply a die's standby current.
    """
    if not printed_cds_nm:
        raise ReproError("need at least one printed CD")
    return sum(
        model.leakage_ratio(cd, drawn_l_nm) for cd in printed_cds_nm
    ) / len(printed_cds_nm)


def measure_gate_cds(
    simulator: LithoSimulator,
    mask: MaskSpec,
    gate_sites: Sequence[Tuple[float, float]],
    window: Rect,
    axis: str = "x",
    dose: float = 1.0,
    defocus_nm: float = 0.0,
) -> List[Optional[float]]:
    """Printed poly CD across the channel at each gate site.

    ``gate_sites`` are the channel midpoints (where poly crosses active);
    the cutline runs along ``axis`` (across the gate).
    """
    grid, latent = simulator.latent_image(mask, window, defocus_nm)
    from ..litho.contour import cutline_cd

    threshold = simulator.config.resist.effective_threshold(dose)
    return [
        cutline_cd(latent, grid, site, axis, threshold, max_width_nm=800.0)
        for site in gate_sites
    ]


def gate_sites_of_cell(cell, poly_layer, active_layer) -> List[Tuple[float, float]]:
    """Channel midpoints of every gate in a flattened cell.

    A gate is a poly/active overlap; its midpoint is the CD cutline anchor.
    """
    poly = cell.flat_region(poly_layer)
    active = cell.flat_region(active_layer)
    channels = poly & active
    sites: List[Tuple[float, float]] = []
    for rect in channels.rects():
        sites.append(((rect.x1 + rect.x2) / 2.0, (rect.y1 + rect.y2) / 2.0))
    return sites
