"""Design-impact analytics: hierarchy, timing, yield, proximity.

Public surface:

* :func:`hierarchy_impact`, :class:`HierarchyImpact`,
  :class:`CellContextStats` -- OPC-induced hierarchy breakage;
* :class:`DeviceModel`, :class:`TimingDistribution`,
  :func:`measure_gate_cds`, :func:`gate_sites_of_cell` -- printed-CD
  timing;
* :class:`CDSpec`, :func:`parametric_yield`, :func:`catastrophic_yield`,
  :func:`composite_yield`, :func:`cd_uniformity` -- yield models;
* :func:`proximity_curve`, :func:`iso_dense_bias_nm`,
  :func:`curve_flatness_nm`, :class:`ProximityPoint` -- OPE curves.
"""

from .forbidden_pitch import (
    PitchRestriction,
    forbidden_pitches,
    usable_pitch_fraction,
)
from .hierarchy import CellContextStats, HierarchyImpact, hierarchy_impact
from .monte_carlo import CDUResult, ProcessControl, monte_carlo_cdu
from .proximity import (
    ProximityPoint,
    curve_flatness_nm,
    iso_dense_bias_nm,
    proximity_curve,
)
from .timing import (
    DeviceModel,
    TimingDistribution,
    gate_sites_of_cell,
    measure_gate_cds,
    population_leakage_ratio,
)
from .yield_model import (
    CDSpec,
    catastrophic_yield,
    cd_uniformity,
    composite_yield,
    parametric_yield,
)

__all__ = [
    "CDSpec",
    "CDUResult",
    "CellContextStats",
    "DeviceModel",
    "HierarchyImpact",
    "PitchRestriction",
    "ProcessControl",
    "ProximityPoint",
    "TimingDistribution",
    "catastrophic_yield",
    "cd_uniformity",
    "composite_yield",
    "curve_flatness_nm",
    "forbidden_pitches",
    "gate_sites_of_cell",
    "hierarchy_impact",
    "iso_dense_bias_nm",
    "measure_gate_cds",
    "monte_carlo_cdu",
    "parametric_yield",
    "population_leakage_ratio",
    "proximity_curve",
    "usable_pitch_fraction",
]
