"""Hierarchy-impact analysis: how OPC destroys layout reuse.

Proximity correction depends on everything within the optical interaction
radius.  Two placements of the same cell with different neighbourhoods
need *different* corrected geometry, so the mask data can no longer share
one cell definition.  This module measures exactly that: for every cell in
a placed design, the number of distinct optical-context signatures across
its placements -- the number of post-OPC cell variants -- and the effective
figure counts that follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ReproError
from ..geometry import GridIndex, Region, Transform
from ..layout import Cell, Layer


@dataclass(frozen=True)
class CellContextStats:
    """Context diversity of one cell definition."""

    cell_name: str
    placements: int
    unique_contexts: int
    figures_per_instance: int

    @property
    def variant_figures(self) -> int:
        """Figures after per-context cell duplication."""
        return self.unique_contexts * self.figures_per_instance

    @property
    def flat_figures(self) -> int:
        """Figures if every placement were fully flattened."""
        return self.placements * self.figures_per_instance


@dataclass
class HierarchyImpact:
    """Design-wide summary of OPC-induced hierarchy breakage."""

    interaction_radius_nm: int
    per_cell: List[CellContextStats] = field(default_factory=list)

    @property
    def shared_figures(self) -> int:
        """Figures with full hierarchy reuse (pre-OPC ideal)."""
        return sum(s.figures_per_instance for s in self.per_cell)

    @property
    def variant_figures(self) -> int:
        """Figures with one cell variant per unique optical context."""
        return sum(s.variant_figures for s in self.per_cell)

    @property
    def flat_figures(self) -> int:
        """Figures with hierarchy fully flattened (worst case)."""
        return sum(s.flat_figures for s in self.per_cell)

    @property
    def reuse_surviving(self) -> float:
        """Fraction of hierarchy compression that survives OPC.

        1.0 means every placement kept a shared definition; approaching
        ``shared/flat`` means hierarchy was destroyed entirely.
        """
        if self.flat_figures == self.shared_figures:
            return 1.0
        return 1.0 - (self.variant_figures - self.shared_figures) / (
            self.flat_figures - self.shared_figures
        )


def hierarchy_impact(
    top: Cell, layer: Layer, interaction_radius_nm: int = 600
) -> HierarchyImpact:
    """Measure context diversity of every referenced cell in ``top``.

    The context of a placement is the surrounding geometry on ``layer``
    within ``interaction_radius_nm`` of the placed cell's bounding box,
    expressed in the cell's local frame.  Identical contexts (exactly --
    after transform normalisation) allow a shared corrected cell.
    """
    if interaction_radius_nm <= 0:
        raise ReproError("interaction radius must be positive")
    placements = _expanded_placements(top)
    if not placements:
        return HierarchyImpact(interaction_radius_nm=interaction_radius_nm)

    # Spatial index of every placement's flat geometry, plus top-level
    # shapes, for neighbourhood queries.
    index: GridIndex[Tuple[int, List]] = GridIndex(cell_size=5000)
    flat_cache: Dict[str, Region] = {}
    pieces: List[Region] = []
    for pid, (cell, transform) in enumerate(placements):
        local = flat_cache.get(cell.name)
        if local is None:
            local = cell.flat_region(layer).merged()
            flat_cache[cell.name] = local
        placed = local.transformed(transform)
        pieces.append(placed)
        box = placed.bbox()
        if box is not None:
            index.insert(box, (pid, placed.loops))
    own = top.region(layer)
    if own.num_loops:
        box = own.bbox()
        if box is not None:
            index.insert(box, (-1, own.loops))

    per_cell: Dict[str, Dict] = {}
    for pid, (cell, transform) in enumerate(placements):
        entry = per_cell.setdefault(
            cell.name,
            {
                "signatures": set(),
                "count": 0,
                "figures": flat_cache[cell.name].num_loops,
            },
        )
        entry["count"] += 1
        signature = _context_signature(
            pid, cell, transform, flat_cache[cell.name], index, interaction_radius_nm
        )
        entry["signatures"].add(signature)

    result = HierarchyImpact(interaction_radius_nm=interaction_radius_nm)
    for name, entry in sorted(per_cell.items()):
        result.per_cell.append(
            CellContextStats(
                cell_name=name,
                placements=entry["count"],
                unique_contexts=len(entry["signatures"]),
                figures_per_instance=entry["figures"],
            )
        )
    return result


def _expanded_placements(top: Cell) -> List[Tuple[Cell, Transform]]:
    out: List[Tuple[Cell, Transform]] = []
    for ref in top.references:
        for transform in ref.placements():
            out.append((ref.cell, transform))
    return out


def _context_signature(
    pid: int,
    cell: Cell,
    transform: Transform,
    local_region: Region,
    index: GridIndex,
    radius: int,
) -> int:
    """Hash of the neighbourhood geometry in the placement's local frame."""
    local_box = local_region.bbox()
    if local_box is None:
        return 0
    world_box = transform.apply_rect(local_box).expanded(radius)
    neighbourhood = Region()
    for _bbox, (other_pid, loops) in index.query(world_box):
        if other_pid == pid:
            continue
        for loop in loops:
            neighbourhood._add(loop)
    clipped = neighbourhood & Region(world_box)
    inverse = transform.inverse()
    local_context = clipped.transformed(inverse).merged()
    return hash(
        tuple(sorted(tuple(sorted(lp)) for lp in local_context.loops))
    )
