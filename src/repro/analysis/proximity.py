"""Optical-proximity (OPE) curves: printed CD through pitch.

The single most-shown figure of the OPC-adoption era: the same drawn line
prints at different sizes depending on its pitch.  These helpers sweep the
pitch axis and report the curve for any correction state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import ReproError
from ..design.testpatterns import isolated_line, line_space_array
from ..geometry import Region
from ..litho import LithoSimulator, MaskSpec, binary_mask

#: Transforms target geometry into the mask to expose (identity = no OPC).
MaskFlow = Callable[[Region], MaskSpec]


@dataclass(frozen=True)
class ProximityPoint:
    """One sample of an OPE curve."""

    pitch_nm: int
    cd_nm: Optional[float]

    @property
    def printed(self) -> bool:
        """Whether the feature resolved at all."""
        return self.cd_nm is not None


def proximity_curve(
    simulator: LithoSimulator,
    width_nm: int,
    pitches_nm: Sequence[int],
    dose: float = 1.0,
    defocus_nm: float = 0.0,
    mask_flow: MaskFlow = binary_mask,
    include_isolated: bool = True,
) -> List[ProximityPoint]:
    """Printed CD of a ``width_nm`` line at each pitch (plus isolated).

    ``mask_flow`` turns the drawn grating into the exposed mask, so the
    same sweep measures uncorrected, rule-corrected, or model-corrected
    proximity behaviour.
    """
    if width_nm <= 0:
        raise ReproError("line width must be positive")
    points: List[ProximityPoint] = []
    for pitch in pitches_nm:
        if pitch <= width_nm:
            raise ReproError(f"pitch {pitch} must exceed line width {width_nm}")
        pattern = line_space_array(width_nm, pitch - width_nm)
        cd = simulator.cd(
            mask_flow(pattern.region),
            pattern.window,
            pattern.site("center"),
            dose=dose,
            defocus_nm=defocus_nm,
        )
        points.append(ProximityPoint(pitch_nm=pitch, cd_nm=cd))
    if include_isolated:
        pattern = isolated_line(width_nm)
        cd = simulator.cd(
            mask_flow(pattern.region),
            pattern.window,
            pattern.site("center"),
            dose=dose,
            defocus_nm=defocus_nm,
        )
        points.append(ProximityPoint(pitch_nm=10 * max(pitches_nm), cd_nm=cd))
    return points


def iso_dense_bias_nm(curve: Sequence[ProximityPoint]) -> Optional[float]:
    """CD difference between the most isolated and the densest sample."""
    printed = [p for p in curve if p.printed]
    if len(printed) < 2:
        return None
    densest = min(printed, key=lambda p: p.pitch_nm)
    most_iso = max(printed, key=lambda p: p.pitch_nm)
    return most_iso.cd_nm - densest.cd_nm  # type: ignore[operator]


def curve_flatness_nm(curve: Sequence[ProximityPoint]) -> Optional[float]:
    """Peak-to-peak CD variation through pitch (the OPC success metric)."""
    values = [p.cd_nm for p in curve if p.printed]
    if not values:
        return None
    return max(values) - min(values)
