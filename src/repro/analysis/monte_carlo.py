"""Monte-Carlo CD-uniformity budgeting from a focus-exposure matrix.

A fab's CD uniformity is the convolution of its focus and dose control
with the feature's process window.  Sampling (focus, dose) excursions from
calibrated distributions and reading the printed CD off a simulated FEM
yields the full CD population -- mean shift, 3-sigma CDU, and parametric
yield -- in milliseconds, without further lithography simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..litho.process_window import FocusExposureMatrix
from .yield_model import CDSpec, parametric_yield


@dataclass(frozen=True)
class ProcessControl:
    """Gaussian focus/dose control of the exposure tool (1-sigma values)."""

    focus_sigma_nm: float = 120.0
    dose_sigma_fraction: float = 0.015
    focus_mean_nm: float = 0.0
    dose_mean: float = 1.0

    def __post_init__(self) -> None:
        if self.focus_sigma_nm < 0 or self.dose_sigma_fraction < 0:
            raise ReproError("control sigmas must be non-negative")
        if self.dose_mean <= 0:
            raise ReproError("mean dose must be positive")


@dataclass(frozen=True)
class CDUResult:
    """Outcome of a Monte-Carlo CDU run."""

    samples: Tuple[float, ...]  # printed CDs (nm); failures excluded
    failures: int  # draws whose CD was unprintable

    @property
    def mean_nm(self) -> float:
        return float(np.mean(self.samples))

    @property
    def cdu_3sigma_nm(self) -> float:
        """The fab-speak CD uniformity: 3 sigma of the population."""
        return float(3.0 * np.std(self.samples))

    def yield_to(self, spec: CDSpec, gates_per_die: int = 1) -> float:
        """Parametric yield of the population against a CD spec.

        Unprintable draws count as failing samples.
        """
        population: List[Optional[float]] = list(self.samples)
        population.extend([None] * self.failures)
        return parametric_yield(population, spec, gates_per_die)


def monte_carlo_cdu(
    fem: FocusExposureMatrix,
    control: ProcessControl = ProcessControl(),
    draws: int = 2000,
    seed: int = 1,
) -> CDUResult:
    """Sample (focus, dose) excursions and read CDs off the FEM.

    CDs are bilinearly interpolated inside the FEM's sampling; draws
    landing outside the sampled window are clamped to its edge (tool
    control beyond the characterised window is a characterisation gap, not
    a simulation problem).  ``NaN`` FEM cells propagate to failures.
    """
    if draws < 1:
        raise ReproError("need at least one draw")
    rng = random.Random(seed)
    focuses = np.asarray(fem.focuses, dtype=float)
    doses = np.asarray(fem.doses, dtype=float)
    if len(focuses) < 2 or len(doses) < 2:
        raise ReproError("FEM must sample at least 2 focuses and 2 doses")
    samples: List[float] = []
    failures = 0
    for _ in range(draws):
        focus = rng.gauss(control.focus_mean_nm, control.focus_sigma_nm)
        dose = rng.gauss(
            control.dose_mean, control.dose_mean * control.dose_sigma_fraction
        )
        cd = _bilinear(fem.cd, focuses, doses, focus, dose)
        if cd is None:
            failures += 1
        else:
            samples.append(cd)
    if not samples:
        raise ReproError("every Monte-Carlo draw failed to print")
    return CDUResult(samples=tuple(samples), failures=failures)


def _bilinear(
    cd: np.ndarray,
    focuses: np.ndarray,
    doses: np.ndarray,
    focus: float,
    dose: float,
) -> Optional[float]:
    focus = float(np.clip(focus, focuses[0], focuses[-1]))
    dose = float(np.clip(dose, doses[0], doses[-1]))
    i = int(np.clip(np.searchsorted(focuses, focus) - 1, 0, len(focuses) - 2))
    j = int(np.clip(np.searchsorted(doses, dose) - 1, 0, len(doses) - 2))
    tf = (focus - focuses[i]) / (focuses[i + 1] - focuses[i])
    td = (dose - doses[j]) / (doses[j + 1] - doses[j])
    corners = cd[i : i + 2, j : j + 2]
    if np.isnan(corners).any():
        return None
    return float(
        corners[0, 0] * (1 - tf) * (1 - td)
        + corners[1, 0] * tf * (1 - td)
        + corners[0, 1] * (1 - tf) * td
        + corners[1, 1] * tf * td
    )
