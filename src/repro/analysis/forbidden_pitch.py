"""Forbidden-pitch extraction: the design-rule impact of low-k1 imaging.

Off-axis illumination buys dense-pitch resolution at the price of
*forbidden pitches*: intermediate pitches where the diffraction orders
interfere destructively and CD control collapses.  The 2001-era response
was a new kind of design rule -- restricted pitch ranges -- and OPC/SRAF
flows were judged by how many restrictions they lifted.  This module turns
a proximity curve into explicit pitch restrictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ReproError
from .proximity import ProximityPoint


@dataclass(frozen=True)
class PitchRestriction:
    """One contiguous range of unusable pitches."""

    low_pitch_nm: int
    high_pitch_nm: int
    worst_error_nm: float  # max |CD - target| inside the range (inf = no print)

    def covers(self, pitch_nm: int) -> bool:
        """Whether ``pitch_nm`` falls inside this restriction."""
        return self.low_pitch_nm <= pitch_nm <= self.high_pitch_nm

    def __str__(self) -> str:
        return (
            f"pitch {self.low_pitch_nm}-{self.high_pitch_nm} nm "
            f"(worst {self.worst_error_nm:.1f} nm)"
        )


def forbidden_pitches(
    curve: Sequence[ProximityPoint],
    target_cd_nm: float,
    tolerance_nm: float,
) -> List[PitchRestriction]:
    """Contiguous pitch ranges whose CD error exceeds ``tolerance_nm``.

    Unprinted points count as infinitely bad.  Adjacent failing samples
    merge into one restriction spanning from the last good pitch below to
    the first good pitch above (exclusive bounds are midpoints with the
    neighbouring good samples, so restrictions are usable directly as
    design-rule ranges).
    """
    if tolerance_nm <= 0:
        raise ReproError("tolerance must be positive")
    if not curve:
        raise ReproError("need a non-empty proximity curve")
    ordered = sorted(curve, key=lambda p: p.pitch_nm)

    def error(point: ProximityPoint) -> float:
        if point.cd_nm is None:
            return float("inf")
        return abs(point.cd_nm - target_cd_nm)

    restrictions: List[PitchRestriction] = []
    run: List[int] = []
    for idx, point in enumerate(ordered):
        if error(point) > tolerance_nm:
            run.append(idx)
            continue
        if run:
            restrictions.append(_close_run(ordered, run, target_cd_nm))
            run = []
    if run:
        restrictions.append(_close_run(ordered, run, target_cd_nm))
    return restrictions


def _close_run(
    ordered: Sequence[ProximityPoint], run: List[int], target_cd_nm: float
) -> PitchRestriction:
    first, last = run[0], run[-1]
    low = (
        (ordered[first - 1].pitch_nm + ordered[first].pitch_nm) // 2
        if first > 0
        else ordered[first].pitch_nm
    )
    high = (
        (ordered[last].pitch_nm + ordered[last + 1].pitch_nm) // 2
        if last + 1 < len(ordered)
        else ordered[last].pitch_nm
    )
    worst = max(
        float("inf") if ordered[i].cd_nm is None
        else abs(ordered[i].cd_nm - target_cd_nm)
        for i in run
    )
    return PitchRestriction(low, high, worst)


def usable_pitch_fraction(
    curve: Sequence[ProximityPoint],
    target_cd_nm: float,
    tolerance_nm: float,
) -> float:
    """Fraction of sampled pitches meeting the CD tolerance."""
    if not curve:
        raise ReproError("need a non-empty proximity curve")
    good = sum(
        1
        for p in curve
        if p.cd_nm is not None and abs(p.cd_nm - target_cd_nm) <= tolerance_nm
    )
    return good / len(curve)
