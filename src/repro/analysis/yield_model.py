"""Parametric and catastrophic yield models.

Two failure channels, matching how the era scored OPC benefit:

* *parametric*: a gate whose printed CD leaves the spec band is a speed
  or leakage failure -- yield is the in-band fraction, composed across
  all gates of a die;
* *catastrophic*: every pinch/bridge site found by ORC kills the die with
  some probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ReproError


@dataclass(frozen=True)
class CDSpec:
    """The allowed printed-CD band."""

    target_nm: float
    tolerance_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.target_nm <= 0:
            raise ReproError("target CD must be positive")
        if not 0 < self.tolerance_fraction < 1:
            raise ReproError("tolerance must be in (0, 1)")

    @property
    def low_nm(self) -> float:
        """Lower spec limit."""
        return self.target_nm * (1.0 - self.tolerance_fraction)

    @property
    def high_nm(self) -> float:
        """Upper spec limit."""
        return self.target_nm * (1.0 + self.tolerance_fraction)

    def in_spec(self, cd_nm: Optional[float]) -> bool:
        """Whether one measurement passes (``None`` = failed to print)."""
        return cd_nm is not None and self.low_nm <= cd_nm <= self.high_nm


def parametric_yield(
    cds_nm: Sequence[Optional[float]], spec: CDSpec, gates_per_die: int = 1
) -> float:
    """Die yield from a sampled CD population.

    The samples estimate the per-gate pass probability ``p``; a die with
    ``gates_per_die`` independent critical gates yields ``p ** gates``.
    """
    if not cds_nm:
        raise ReproError("need at least one CD sample")
    if gates_per_die < 1:
        raise ReproError("gates per die must be >= 1")
    p = sum(1 for cd in cds_nm if spec.in_spec(cd)) / len(cds_nm)
    return float(p**gates_per_die)


def catastrophic_yield(
    defect_sites: int, kill_probability: float = 0.9
) -> float:
    """Die survival against ORC-detected pinch/bridge sites."""
    if defect_sites < 0:
        raise ReproError("defect count must be non-negative")
    if not 0 <= kill_probability <= 1:
        raise ReproError("kill probability must be in [0, 1]")
    return float((1.0 - kill_probability) ** defect_sites)


def composite_yield(
    cds_nm: Sequence[Optional[float]],
    spec: CDSpec,
    defect_sites: int,
    gates_per_die: int = 1,
    kill_probability: float = 0.9,
) -> float:
    """Parametric and catastrophic yield combined (independent channels)."""
    return parametric_yield(cds_nm, spec, gates_per_die) * catastrophic_yield(
        defect_sites, kill_probability
    )


def cd_uniformity(cds_nm: Sequence[Optional[float]]) -> float:
    """3-sigma CD uniformity of the printed population, in nm."""
    values = np.array([cd for cd in cds_nm if cd is not None], dtype=float)
    if len(values) == 0:
        raise ReproError("no printable CDs in the population")
    return float(3.0 * np.std(values))
