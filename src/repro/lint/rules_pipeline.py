"""Pipeline-layer lint rules (LNT3xx): recipe features with no effect.

A recipe step that silently does nothing is worse than one that fails:
the run completes, the ledger records success, and the missing
correction only shows up at wafer.  These rules cross-check recipe
stages against each other and against the layout they will process.
"""

from __future__ import annotations

from typing import Iterator

from ..opc import SRAFRecipe
from ..verify.drc import check_space, check_width
from .diagnostics import Diagnostic, Severity
from .engine import LintContext, rule


@rule(
    "LNT301",
    "sraf-unwritable",
    "SRAF recipe produces bars the MRC stage must delete or repair, "
    "so the assist features never reach the mask.",
    requires=("mrc", "level"),
)
def check_sraf_writable(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.level != "model+sraf":
        return
    sraf = ctx.sraf_recipe if ctx.sraf_recipe is not None else SRAFRecipe()
    if sraf.bar_width_nm < ctx.mrc.min_width_nm:
        yield Diagnostic(
            code="LNT301",
            severity=Severity.WARNING,
            message=(
                f"SRAF bar_width_nm={sraf.bar_width_nm} is below the MRC "
                f"minimum width {ctx.mrc.min_width_nm}; every scattering "
                f"bar will be deleted at mask rule check"
            ),
            hint=(
                "widen the bars to at least the MRC minimum, or drop to "
                "level 'model' and stop paying for SRAF insertion"
            ),
        )
    if sraf.mrc_space_nm < ctx.mrc.min_space_nm:
        yield Diagnostic(
            code="LNT301",
            severity=Severity.WARNING,
            message=(
                f"SRAF mrc_space_nm={sraf.mrc_space_nm} is below the MRC "
                f"minimum space {ctx.mrc.min_space_nm}; bars will be "
                f"placed only to be clipped or merged into main features"
            ),
            hint=f"set mrc_space_nm >= {ctx.mrc.min_space_nm}",
        )


@rule(
    "LNT302",
    "retarget-noop",
    "Retarget rules configured but nothing in the layout is below "
    "their floors; the stage runs (and costs wall time) for nothing.",
    requires=("retarget_rules", "layout"),
)
def check_retarget_noop(ctx: LintContext) -> Iterator[Diagnostic]:
    rules = ctx.retarget_rules
    merged = ctx.merged_layout()
    if merged.is_empty:
        return
    narrow = check_width(merged, rules.min_width_nm)
    tight = check_space(merged, rules.min_space_nm)
    if narrow.is_empty and tight.is_empty:
        yield Diagnostic(
            code="LNT302",
            severity=Severity.INFO,
            message=(
                f"retarget rules (min width {rules.min_width_nm}, min "
                f"space {rules.min_space_nm}) match nothing in this "
                f"layout; the retarget stage is a no-op here"
            ),
            hint="drop retarget_rules for this layer to save a pass",
        )


@rule(
    "LNT303",
    "smooth-undoes-opc",
    "Smoothing tolerance larger than the per-iteration OPC move; the "
    "jog cleanup erases the corrections it follows.",
    requires=("smooth_tolerance_nm", "model_recipe"),
)
def check_smooth_tolerance(ctx: LintContext) -> Iterator[Diagnostic]:
    tol = ctx.smooth_tolerance_nm
    per_iter = ctx.model_recipe.max_move_per_iteration_nm
    if tol > per_iter:
        yield Diagnostic(
            code="LNT303",
            severity=Severity.WARNING,
            message=(
                f"smooth_tolerance_nm={tol} exceeds "
                f"max_move_per_iteration_nm={per_iter}; smoothing can "
                f"flatten single-iteration edge moves back out of the "
                f"mask"
            ),
            hint="keep the smoothing tolerance below the OPC step size",
        )


@rule(
    "LNT304",
    "parallel-noop",
    "Parallel execution requested where it cannot help.",
    requires=("parallel",),
)
def check_parallel_noop(ctx: LintContext) -> Iterator[Diagnostic]:
    spec = ctx.parallel
    if spec.n_workers == 1:
        yield Diagnostic(
            code="LNT304",
            severity=Severity.INFO,
            message=(
                "parallel spec with n_workers=1 runs the serial path "
                "with pool overhead on top"
            ),
            hint="omit the parallel spec, or raise n_workers",
        )
        return
    if ctx.tiling is not None and ctx.layout is not None:
        merged = ctx.merged_layout()
        box = merged.bbox()
        if (
            box is not None
            and box.width <= ctx.tiling.tile_nm
            and box.height <= ctx.tiling.tile_nm
        ):
            yield Diagnostic(
                code="LNT304",
                severity=Severity.INFO,
                message=(
                    f"layout ({box.width} x {box.height} nm) fits in a "
                    f"single {ctx.tiling.tile_nm} nm tile; "
                    f"{spec.n_workers} workers will leave all but one "
                    f"idle"
                ),
                hint="shrink tile_nm or run serially for this layout",
            )


@rule(
    "LNT305",
    "polarity-mismatch",
    "Bright-feature model on a clear-field flow (or vice versa); the "
    "EPE sign convention inverts and OPC walks edges the wrong way.",
    requires=("model_recipe",),
)
def check_polarity(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.model_recipe.bright_feature and not ctx.dark_field:
        yield Diagnostic(
            code="LNT305",
            severity=Severity.WARNING,
            message=(
                "model recipe sets bright_feature=True but the flow is "
                "not dark-field; drawn chrome will be corrected with an "
                "inverted polarity model"
            ),
            hint=(
                "set dark_field=True on the recipe (the flow then forces "
                "bright_feature and clamps damping) or reset "
                "bright_feature"
            ),
        )
