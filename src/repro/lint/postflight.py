"""Postflight: the MRC engine wired behind the flows, before export.

The mirror image of :mod:`repro.lint.preflight`: where preflight rejects
jobs that should never run, postflight rejects *outputs* that should
never ship.  ``correct_region`` / ``tapeout_region`` run it on the
corrected mask before any GDS leaves the process; blocking defects raise
:class:`~repro.errors.PostflightError` carrying the full diagnostic
report, so a mask the shop would bounce dies here instead of at the
mask house.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import PostflightError
from ..geometry import Region
from ..layout import Cell
from ..verify.mrc import MRCReport, MRCRules
from .diagnostics import LintReport
from .engine import LintContext, run_lint
from .rules_mask import MRC_CODES, mask_report


@dataclass
class PostflightResult:
    """Both views of one postflight run.

    ``report`` is the lint-model rendering (feeds the gate and the
    text/JSON/SARIF emitters); ``mrc`` is the full engine report with
    every marker plus the shot/vertex/figure estimate (feeds the run
    ledger and the hotspot overlay).
    """

    report: LintReport
    mrc: MRCReport

    @property
    def ok(self) -> bool:
        return not self.report.has_errors


def postflight_mask(
    mask_geometry: Region,
    rules: Optional[MRCRules] = None,
    cell: Optional[Cell] = None,
    artifact: Optional[str] = None,
) -> PostflightResult:
    """Statically check a corrected mask against the MRC rule family.

    Runs the registered MRC1xx rules through the lint engine (one engine
    sweep, cached on the context) and returns both the lint report and
    the underlying :class:`~repro.verify.mrc.MRCReport`.  Gating is the
    caller's choice via :func:`gate_postflight`.
    """
    context = LintContext(
        mask=mask_geometry,
        mrc=rules,
        cell=cell,
        artifact=artifact,
    )
    report = run_lint(context, codes=MRC_CODES)
    return PostflightResult(report=report, mrc=mask_report(context))


def gate_postflight(
    result: PostflightResult, stage: str = "tapeout"
) -> PostflightResult:
    """Raise :class:`PostflightError` when blocking defects were found."""
    report = result.report
    if report.has_errors:
        heads = "; ".join(str(d) for d in report.errors[:3])
        more = report.error_count - min(report.error_count, 3)
        if more:
            heads += f"; and {more} more"
        raise PostflightError(
            f"{stage} postflight found {report.error_count} blocking "
            f"mask defect(s): {heads}",
            diagnostics=report.diagnostics,
        )
    return result
