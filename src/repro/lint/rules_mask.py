"""Mask-layer lint rules (MRC1xx): postflight checks on corrected masks.

The preflight rules (LNT0xx-LNT4xx) ask whether a job *should* run; the
MRC family asks whether the mask that came out of it can be *written*.
Each rule wraps one class of findings from the edge-based engine in
:mod:`repro.verify.mrc` so the text/JSON/SARIF emitters, the severity
model, and the rules catalog are reused verbatim -- a SARIF viewer sees
``MRC102`` next to ``LNT201`` with no special casing.

Rules require ``ctx.mask`` (corrected mask-side geometry); ``ctx.mrc``
supplies the limits (library defaults otherwise).  The engine runs once
per context and is cached, exactly like ``ctx.merged_layout()``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..verify.mrc import (
    MRC_RULE_CATALOG,
    MRCReport,
    MRCRules,
    MRCViolation,
    check_mask_region,
)
from .diagnostics import Diagnostic, LintReport, Severity
from .engine import LintContext, rule
from .rules_layout import MAX_LOCATIONS

#: The registered mask-rule codes, in catalog (and severity-stable) order.
MRC_CODES = tuple(sorted(MRC_RULE_CATALOG))

_SEVERITIES = {
    "error": Severity.ERROR,
    "warning": Severity.WARNING,
    "info": Severity.INFO,
}

_HINTS = {
    "MRC101": "run repair_mask or relax aggressive OPC moves here",
    "MRC102": "run repair_mask or increase the correction's space clamp",
    "MRC103": "drop the figure or merge it into adjacent geometry",
    "MRC104": "raise the smoothing tolerance to absorb the jog sliver",
    "MRC105": "fill the notch or loosen fragmentation near this edge",
    "MRC106": "pull one corner back to open the diagonal gap",
}


def mask_report(ctx: LintContext) -> MRCReport:
    """The engine report for ``ctx.mask`` (one run per context, cached)."""
    cached = getattr(ctx, "_mrc_report", None)
    if cached is None:
        cached = check_mask_region(
            ctx.mask, ctx.mrc or MRCRules(), cell=ctx.cell
        )
        ctx._mrc_report = cached
    return cached


def violation_diagnostic(violation: MRCViolation) -> Diagnostic:
    """One engine marker as a lint diagnostic."""
    return Diagnostic(
        code=violation.rule_id,
        severity=_SEVERITIES[violation.severity],
        message=violation.message(),
        hint=_HINTS.get(violation.rule_id),
        location=violation.marker,
        cell=violation.cell,
    )


def mrc_lint_report(
    report: MRCReport, max_locations: Optional[int] = MAX_LOCATIONS
) -> LintReport:
    """An engine report rendered through the lint diagnostics model.

    Per-rule findings beyond ``max_locations`` collapse into one summary
    diagnostic (same overflow idiom as the layout rules); pass ``None``
    to keep every marker.
    """
    diagnostics: List[Diagnostic] = []
    for code in MRC_CODES:
        found = [v for v in report.violations if v.rule_id == code]
        if not found:
            continue
        cap = len(found) if max_locations is None else max_locations
        diagnostics.extend(violation_diagnostic(v) for v in found[:cap])
        overflow = len(found) - cap
        if overflow > 0:
            kind, severity, _desc = MRC_RULE_CATALOG[code]
            diagnostics.append(
                Diagnostic(
                    code=code,
                    severity=_SEVERITIES[severity],
                    message=(
                        f"... and {overflow} more {kind} violation(s)"
                    ),
                    hint=_HINTS.get(code),
                )
            )
    return LintReport(diagnostics)


def _register(code: str) -> None:
    kind, _severity, description = MRC_RULE_CATALOG[code]

    @rule(code, kind, description, requires=("mask",))
    def check(ctx: LintContext, _code: str = code) -> Iterator[Diagnostic]:
        report = mask_report(ctx)
        found = [v for v in report.violations if v.rule_id == _code]
        for violation in found[:MAX_LOCATIONS]:
            yield violation_diagnostic(violation)
        overflow = len(found) - MAX_LOCATIONS
        if overflow > 0:
            vkind, severity, _desc = MRC_RULE_CATALOG[_code]
            yield Diagnostic(
                code=_code,
                severity=_SEVERITIES[severity],
                message=f"... and {overflow} more {vkind} violation(s)",
                hint=_HINTS.get(_code),
            )


for _code in MRC_CODES:
    _register(_code)
