"""Layout-layer lint rules (LNT2xx): drawn-geometry hazards.

These rules reuse the repo's exact machinery -- :func:`check_width` for
sub-resolution features, :class:`EdgeIndex` ray queries for pitch
occupancy, the :mod:`repro.opc.psm` conflict graph for phase
assignability, and :class:`GridIndex` for hierarchy overlap -- but run
it statically, with no simulator in the loop.

Findings carry a layout :class:`~repro.geometry.Rect` and, when a cell
hierarchy is available, the deepest owning cell (same attribution policy
as :func:`repro.obs.spatial.attribute_sites`).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..geometry import Coord, Rect, Region
from ..geometry.measure import EdgeIndex
from ..geometry.spatial import GridIndex
from ..opc.psm import assign_phases
from ..verify.drc import check_width
from .diagnostics import Diagnostic, Severity
from .engine import LintContext, rule

#: Cap per-rule location diagnostics; one summary line reports the rest.
MAX_LOCATIONS = 20


def _owner(ctx: LintContext, location: Rect) -> Optional[str]:
    """Deepest cell owning ``location``'s centre, when a hierarchy exists."""
    if ctx.cell is None:
        return None
    index = getattr(ctx, "_owner_index", None)
    if index is None:
        from ..obs.spatial import cell_owner_index

        try:
            index = cell_owner_index(ctx.cell)
        except Exception:
            index = False  # no geometry to attribute against
        ctx._owner_index = index
    if index is False:
        return ctx.cell.name
    x, y = location.center
    owner = ctx.cell.name
    best = (-1, float("inf"))
    for box, (name, depth, area) in index.query(Rect(x, y, x + 1, y + 1)):
        if box.contains((x, y)):
            if (depth, -area) > (best[0], -best[1]):
                best = (depth, area)
                owner = name
    return owner


def _located(
    ctx: LintContext,
    code: str,
    severity: Severity,
    boxes: Sequence[Rect],
    message: str,
    hint: str,
) -> Iterator[Diagnostic]:
    """One diagnostic per offending box, capped at :data:`MAX_LOCATIONS`."""
    for box in boxes[:MAX_LOCATIONS]:
        yield Diagnostic(
            code=code,
            severity=severity,
            message=message,
            hint=hint,
            location=box,
            cell=_owner(ctx, box),
        )
    overflow = len(boxes) - MAX_LOCATIONS
    if overflow > 0:
        yield Diagnostic(
            code=code,
            severity=severity,
            message=f"... and {overflow} more instance(s) of: {message}",
            hint=hint,
        )


@rule(
    "LNT201",
    "sub-resolution-feature",
    "Drawn features narrower than the optics can print at all; OPC "
    "cannot rescue them and will burn its whole move budget trying.",
    requires=("litho", "layout"),
)
def check_sub_resolution(ctx: LintContext) -> Iterator[Diagnostic]:
    optics = ctx.litho.optics
    # 0.25*lambda/NA is well below any production k1; nothing narrower
    # than this prints under any enhancement, so drawing it is an error.
    floor_nm = int(round(0.25 * optics.wavelength_nm / optics.na))
    if floor_nm <= 0:
        return
    merged = ctx.merged_layout()
    if merged.is_empty:
        return
    offenders = check_width(merged, floor_nm)
    if offenders.is_empty:
        return
    boxes = [poly.bbox() for poly in offenders.outer_polygons()]
    yield from _located(
        ctx,
        "LNT201",
        Severity.ERROR,
        boxes,
        f"drawn feature narrower than the {floor_nm} nm printability "
        f"floor (0.25*lambda/NA for lambda={optics.wavelength_nm:g}, "
        f"NA={optics.na:g})",
        "widen the feature or retarget it before OPC",
    )


@rule(
    "LNT202",
    "off-grid-vertex",
    "Vertices not on the mask manufacturing grid; the mask writer will "
    "snap them, silently changing the corrected shapes.",
)
def check_off_grid(ctx: LintContext) -> Iterator[Diagnostic]:
    grid = ctx.mask_grid_nm
    if grid <= 1:
        return  # every integer dbu vertex is on a 1 nm grid
    loops = _vertex_loops(ctx)
    if loops is None:
        return
    boxes: List[Rect] = []
    for loop in loops:
        for x, y in loop:
            if int(x) % grid or int(y) % grid:
                boxes.append(Rect(int(x), int(y), int(x), int(y)))
    if boxes:
        yield from _located(
            ctx,
            "LNT202",
            Severity.WARNING,
            boxes,
            f"vertex off the {grid} nm mask grid",
            f"snap all coordinates to multiples of {grid} before tapeout",
        )


@rule(
    "LNT203",
    "degenerate-loop",
    "Zero-area, under-vertexed, duplicate-vertex or non-Manhattan "
    "loops; the geometry kernel silently drops them, so the shape the "
    "designer drew never reaches the mask.",
    requires=("raw_loops",),
)
def check_degenerate_loops(ctx: LintContext) -> Iterator[Diagnostic]:
    for loop in ctx.raw_loops:
        points = [(int(x), int(y)) for x, y in loop]
        problem = _loop_problem(points)
        if problem is None:
            continue
        box = _loop_bbox(points)
        yield Diagnostic(
            code="LNT203",
            severity=Severity.ERROR,
            message=f"degenerate loop ({problem}) would be silently dropped",
            hint="fix or delete the loop in the source layout",
            location=box,
            cell=_owner(ctx, box) if box is not None else None,
        )


@rule(
    "LNT204",
    "self-intersecting-loop",
    "Loops whose boundary crosses itself; winding rules make the "
    "printed polarity of the pinched lobes ambiguous.",
)
def check_self_intersections(ctx: LintContext) -> Iterator[Diagnostic]:
    loops = _vertex_loops(ctx)
    if loops is None:
        return
    for loop in loops:
        points = [(int(x), int(y)) for x, y in loop]
        crossing = _first_self_crossing(points)
        if crossing is None:
            continue
        x, y = crossing
        yield Diagnostic(
            code="LNT204",
            severity=Severity.ERROR,
            message=f"loop boundary crosses itself at ({x}, {y})",
            hint="split the loop into simple polygons",
            location=Rect(x, y, x, y),
            cell=_owner(ctx, Rect(x, y, x, y)),
        )


@rule(
    "LNT205",
    "forbidden-pitch",
    "Edges sitting at a pitch the process cannot print within spec "
    "(from calibrated forbidden-pitch restrictions).",
    requires=("layout", "pitch_restrictions"),
)
def check_forbidden_pitch(ctx: LintContext) -> Iterator[Diagnostic]:
    merged = ctx.merged_layout()
    if merged.is_empty:
        return
    reach = max(int(r.high_pitch_nm) for r in ctx.pitch_restrictions) + 1
    index = EdgeIndex(merged)
    boxes_by_restriction: dict = {}
    for midpoint, normal in _edge_probes(merged):
        space, width = index.clearances(midpoint, normal, reach)
        if space is None or width is None:
            continue
        pitch = width + space
        for restriction in ctx.pitch_restrictions:
            if restriction.covers(pitch):
                x, y = midpoint
                boxes_by_restriction.setdefault(restriction, []).append(
                    (Rect(x, y, x, y), pitch)
                )
                break
    for restriction, hits in sorted(
        boxes_by_restriction.items(), key=lambda kv: kv[0].low_pitch_nm
    ):
        boxes = [box for box, _pitch in hits]
        pitches = sorted({pitch for _box, pitch in hits})
        yield from _located(
            ctx,
            "LNT205",
            Severity.WARNING,
            boxes,
            f"edge at forbidden pitch (measured "
            f"{pitches[0]}..{pitches[-1]} nm, restricted band "
            f"[{restriction.low_pitch_nm}, {restriction.high_pitch_nm}] nm, "
            f"worst error {restriction.worst_error_nm:g} nm)",
            "shift the neighbour or insert assist features to move the "
            "pitch out of the restricted band",
        )


@rule(
    "LNT206",
    "phase-conflict",
    "Odd cycles in the alternating-PSM phase graph; no phase "
    "assignment exists and the layout itself must change.",
    requires=("layout", "psm_recipe"),
)
def check_phase_conflicts(ctx: LintContext) -> Iterator[Diagnostic]:
    merged = ctx.merged_layout()
    if merged.is_empty:
        return
    assignment = assign_phases(merged, ctx.psm_recipe, strict=False)
    for group in assignment.conflicts:
        shifters = [assignment.shifters[i] for i in group]
        box = Rect(
            min(s.x1 for s in shifters),
            min(s.y1 for s in shifters),
            max(s.x2 for s in shifters),
            max(s.y2 for s in shifters),
        )
        yield Diagnostic(
            code="LNT206",
            severity=Severity.ERROR,
            message=(
                f"phase-conflict group of {len(group)} shifters (odd "
                f"cycle); alternating PSM cannot 2-color this "
                f"neighbourhood"
            ),
            hint=(
                "respace the critical lines or break the cycle with a "
                "non-critical jog (the paper's layout-change cost of "
                "strong PSM)"
            ),
            location=box,
            cell=_owner(ctx, box),
        )


@rule(
    "LNT207",
    "overlapping-placements",
    "Cell placements whose bounding boxes overlap; overlapping "
    "instances see context-dependent proximity, defeating "
    "correct-once-per-cell hierarchical OPC.",
    requires=("cell",),
)
def check_overlapping_placements(ctx: LintContext) -> Iterator[Diagnostic]:
    placements: List[Tuple[Rect, str]] = []

    def collect(cell, transform) -> None:
        for ref in cell.references:
            child_box = ref.cell.bbox(recursive=True)
            for place in ref.placements():
                placed = place.then(transform)
                if child_box is not None:
                    placements.append(
                        (placed.apply_rect(child_box), ref.cell.name)
                    )
                collect(ref.cell, placed)

    from ..geometry import Transform

    collect(ctx.cell, Transform())
    if len(placements) < 2:
        return
    span = max(
        max(box.width for box, _ in placements),
        max(box.height for box, _ in placements),
    )
    index: GridIndex = GridIndex(cell_size=max(1, span))
    index.insert_all([(box, i) for i, (box, _name) in enumerate(placements)])
    seen = set()
    boxes: List[Rect] = []
    names: List[Tuple[str, str]] = []
    for i, (box, name) in enumerate(placements):
        for other_box, j in index.query(box):
            if j <= i or (i, j) in seen:
                continue
            seen.add((i, j))
            overlap = box.intersection(other_box)
            # Abutting placements (shared edge, zero-area overlap) are
            # the normal tiling case, not a hazard.
            if overlap is None or overlap.is_empty:
                continue
            boxes.append(overlap)
            names.append((name, placements[j][1]))
    if boxes:
        pairs = sorted({f"{a}/{b}" for a, b in names})
        yield from _located(
            ctx,
            "LNT207",
            Severity.WARNING,
            boxes,
            f"overlapping cell placements ({', '.join(pairs[:4])}); "
            f"instances are no longer interchangeable for "
            f"hierarchical OPC",
            "separate the placements or flatten the overlapping region "
            "before correction",
        )


# -- helpers -------------------------------------------------------------------


def _vertex_loops(
    ctx: LintContext,
) -> Optional[Sequence[Sequence[Coord]]]:
    """Pre-merge vertex loops: raw input when given, else the layout's."""
    if ctx.raw_loops is not None:
        return ctx.raw_loops
    if ctx.layout is not None:
        return ctx.layout.loops
    return None


def _loop_bbox(points: Sequence[Coord]) -> Optional[Rect]:
    if not points:
        return None
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def _loop_problem(points: Sequence[Coord]) -> Optional[str]:
    """Why a vertex loop is degenerate, or ``None`` when it is fine."""
    if len(points) < 4:
        return f"only {len(points)} vertices"
    n = len(points)
    for i in range(n):
        x1, y1 = points[i]
        x2, y2 = points[(i + 1) % n]
        if (x1, y1) == (x2, y2):
            return f"duplicate vertex at ({x1}, {y1})"
        if x1 != x2 and y1 != y2:
            return f"non-Manhattan edge ({x1},{y1})-({x2},{y2})"
    area2 = 0
    for i in range(n):
        x1, y1 = points[i]
        x2, y2 = points[(i + 1) % n]
        area2 += x1 * y2 - x2 * y1
    if area2 == 0:
        return "zero enclosed area"
    return None


def _first_self_crossing(points: Sequence[Coord]) -> Optional[Coord]:
    """First proper crossing of a Manhattan loop's own boundary.

    Only *proper* crossings count (one edge passing strictly through the
    interior of a perpendicular edge); touching or collinear overlap is
    left to the degeneracy rule.  O(n^2) over the loop's edges, which is
    fine for the drawn-polygon sizes this repo handles.
    """
    n = len(points)
    if n < 4:
        return None
    edges = []
    for i in range(n):
        x1, y1 = points[i]
        x2, y2 = points[(i + 1) % n]
        if (x1, y1) != (x2, y2):
            edges.append((x1, y1, x2, y2))
    for i in range(len(edges)):
        ax1, ay1, ax2, ay2 = edges[i]
        for j in range(i + 1, len(edges)):
            bx1, by1, bx2, by2 = edges[j]
            if ax1 == ax2 and by1 == by2:  # A vertical, B horizontal
                hit = _proper_cross(ax1, ay1, ay2, by1, bx1, bx2)
                if hit:
                    return (ax1, by1)
            elif ay1 == ay2 and bx1 == bx2:  # A horizontal, B vertical
                hit = _proper_cross(bx1, by1, by2, ay1, ax1, ax2)
                if hit:
                    return (bx1, ay1)
    return None


def _proper_cross(
    vx: int, vy1: int, vy2: int, hy: int, hx1: int, hx2: int
) -> bool:
    """Vertical segment at ``vx`` strictly crosses horizontal at ``hy``."""
    vlo, vhi = (vy1, vy2) if vy1 < vy2 else (vy2, vy1)
    hlo, hhi = (hx1, hx2) if hx1 < hx2 else (hx2, hx1)
    return vlo < hy < vhi and hlo < vx < hhi


def _edge_probes(merged: Region):
    """(midpoint, outward normal) for every boundary edge of a region.

    Canonical loops are CCW for outer boundaries and CW for holes, so
    the right-hand normal of the traversal direction always points away
    from the region body.
    """
    for loop in merged.loops:
        n = len(loop)
        for i in range(n):
            x1, y1 = loop[i]
            x2, y2 = loop[(i + 1) % n]
            if x1 == x2 and y1 == y2:
                continue
            dx = (x2 > x1) - (x2 < x1)
            dy = (y2 > y1) - (y2 < y1)
            midpoint = ((x1 + x2) // 2, (y1 + y2) // 2)
            yield midpoint, (dy, -dx)
