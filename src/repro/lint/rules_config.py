"""Config-layer lint rules (LNT1xx): physics and recipe sanity.

These rules inspect :class:`~repro.litho.LithoConfig`,
:class:`~repro.opc.TilingSpec`, :class:`~repro.opc.ParallelSpec` and the
model-OPC recipe for settings that are legal individually but doomed in
combination -- the kind of mistake that otherwise only surfaces after
minutes of correction or a full mask write.

All optical thresholds derive from the configured kernel, never from
hard-coded node numbers: with lambda/NA the characteristic length scale,
0.61*lambda/NA is the Rayleigh resolution and 2*lambda/NA a conservative
proximity interaction radius.
"""

from __future__ import annotations

import os
from typing import Iterator

from .diagnostics import Diagnostic, Severity
from .engine import LintContext, rule


def _lambda_over_na(litho) -> float:
    return litho.optics.wavelength_nm / litho.optics.na


@rule(
    "LNT101",
    "optics-ranges",
    "Illumination settings outside the regime the simulator is "
    "calibrated for (NA, partial coherence).",
    requires=("litho",),
)
def check_optics_ranges(ctx: LintContext) -> Iterator[Diagnostic]:
    optics = ctx.litho.optics
    if not (0.5 <= optics.na <= 0.93):
        yield Diagnostic(
            code="LNT101",
            severity=Severity.WARNING,
            message=(
                f"numerical aperture {optics.na} is outside the "
                f"validated dry-lithography band [0.5, 0.93]"
            ),
            hint="use an NA the resist model was calibrated against",
        )
    sigma_max = optics.source.sigma_max
    if sigma_max < 0.2 or sigma_max > 1.0:
        yield Diagnostic(
            code="LNT101",
            severity=Severity.WARNING,
            message=(
                f"source extent sigma_max={sigma_max:.2f} is outside "
                f"the practical partial-coherence range [0.2, 1.0]"
            ),
            hint=(
                "near-coherent or beyond-pupil sources make the SOCS "
                "kernel decomposition ill-conditioned"
            ),
        )


@rule(
    "LNT102",
    "pixel-sampling",
    "Simulation pixel too coarse to resolve the optical image "
    "(Nyquist criterion over the band-limited aerial image).",
    requires=("litho",),
)
def check_pixel_sampling(ctx: LintContext) -> Iterator[Diagnostic]:
    litho = ctx.litho
    optics = litho.optics
    sigma_max = optics.source.sigma_max
    # The aerial image is band-limited at NA*(1+sigma_max)/lambda, so
    # Nyquist sampling needs a pixel of at most half that wavelength.
    nyquist_nm = optics.wavelength_nm / (2.0 * optics.na * (1.0 + sigma_max))
    if litho.pixel_nm > nyquist_nm:
        yield Diagnostic(
            code="LNT102",
            severity=Severity.ERROR,
            message=(
                f"pixel_nm={litho.pixel_nm:g} exceeds the Nyquist limit "
                f"{nyquist_nm:.1f} nm for lambda={optics.wavelength_nm:g}, "
                f"NA={optics.na:g}, sigma_max={sigma_max:.2f}; the aerial "
                f"image will alias"
            ),
            hint=f"set pixel_nm <= {nyquist_nm / 2:.0f} for headroom",
        )
    elif litho.pixel_nm > nyquist_nm / 2.0:
        yield Diagnostic(
            code="LNT102",
            severity=Severity.WARNING,
            message=(
                f"pixel_nm={litho.pixel_nm:g} is within a factor of two "
                f"of the Nyquist limit {nyquist_nm:.1f} nm; contour and "
                f"EPE accuracy degrade near the limit"
            ),
            hint=f"prefer pixel_nm <= {nyquist_nm / 2:.0f}",
        )


@rule(
    "LNT103",
    "tile-halo",
    "Tile context (halo + ambit) smaller than the optical interaction "
    "radius, so tile seams see different proximity environments.",
    requires=("litho", "tiling"),
)
def check_tile_halo(ctx: LintContext) -> Iterator[Diagnostic]:
    litho = ctx.litho
    scale = _lambda_over_na(litho)
    # plan_tiles() clips context at halo + ambit beyond the tile edge;
    # that sum is the geometry a seam fragment actually sees.
    effective_nm = ctx.tiling.halo_nm + litho.ambit_nm
    rayleigh_nm = 0.61 * scale
    interaction_nm = 2.0 * scale
    if effective_nm < rayleigh_nm:
        yield Diagnostic(
            code="LNT103",
            severity=Severity.ERROR,
            message=(
                f"tile context halo_nm+ambit_nm={effective_nm:g} is below "
                f"the Rayleigh resolution {rayleigh_nm:.0f} nm; corrected "
                f"tiles will not stitch (seam fragments miss even their "
                f"nearest neighbours)"
            ),
            hint=(
                f"raise TilingSpec.halo_nm or LithoConfig.ambit_nm so "
                f"their sum is >= {interaction_nm:.0f}"
            ),
        )
    elif effective_nm < interaction_nm:
        yield Diagnostic(
            code="LNT103",
            severity=Severity.WARNING,
            message=(
                f"tile context halo_nm+ambit_nm={effective_nm:g} is below "
                f"the proximity interaction radius 2*lambda/NA = "
                f"{interaction_nm:.0f} nm; long-range flare at seams is "
                f"truncated"
            ),
            hint=f"prefer halo_nm + ambit_nm >= {interaction_nm:.0f}",
        )


@rule(
    "LNT104",
    "worker-pool",
    "Worker-pool settings that waste capacity or mask faults.",
    requires=("parallel",),
)
def check_worker_pool(ctx: LintContext) -> Iterator[Diagnostic]:
    spec = ctx.parallel
    cpus = os.cpu_count() or 1
    if spec.n_workers > cpus:
        yield Diagnostic(
            code="LNT104",
            severity=Severity.WARNING,
            message=(
                f"n_workers={spec.n_workers} exceeds the {cpus} CPUs "
                f"available; extra workers only add scheduling overhead"
            ),
            hint=f"use n_workers <= {cpus}",
        )
    if spec.timeout_s is not None and spec.timeout_s < 1.0:
        yield Diagnostic(
            code="LNT104",
            severity=Severity.WARNING,
            message=(
                f"timeout_s={spec.timeout_s:g} is below one second; "
                f"healthy tiles routinely take longer, so the pool will "
                f"retry or fail work that was not stuck"
            ),
            hint="set timeout_s well above the slowest expected tile",
        )
    if spec.on_failure == "raise" and spec.max_retries == 0:
        yield Diagnostic(
            code="LNT104",
            severity=Severity.INFO,
            message=(
                "on_failure='raise' with max_retries=0 aborts the whole "
                "job on the first transient worker fault"
            ),
            hint="allow at least one retry, or use on_failure='serial'",
        )


@rule(
    "LNT105",
    "recipe-consistency",
    "Model-OPC recipe fields that contradict each other.",
    requires=("model_recipe",),
)
def check_recipe_consistency(ctx: LintContext) -> Iterator[Diagnostic]:
    recipe = ctx.model_recipe
    if recipe.epe_search_nm < recipe.epe_tolerance_nm:
        yield Diagnostic(
            code="LNT105",
            severity=Severity.ERROR,
            message=(
                f"epe_search_nm={recipe.epe_search_nm:g} is smaller than "
                f"epe_tolerance_nm={recipe.epe_tolerance_nm:g}; the EPE "
                f"probe cannot even resolve the convergence target"
            ),
            hint="set epe_search_nm to several times epe_tolerance_nm",
        )
    if recipe.max_move_per_iteration_nm > recipe.max_total_move_nm:
        yield Diagnostic(
            code="LNT105",
            severity=Severity.ERROR,
            message=(
                f"max_move_per_iteration_nm="
                f"{recipe.max_move_per_iteration_nm} exceeds "
                f"max_total_move_nm={recipe.max_total_move_nm}; a single "
                f"iteration saturates the total move budget"
            ),
            hint="keep the per-iteration cap below the total budget",
        )
    if recipe.max_iterations > 50:
        yield Diagnostic(
            code="LNT105",
            severity=Severity.WARNING,
            message=(
                f"max_iterations={recipe.max_iterations} is far beyond "
                f"the usual convergence horizon; unconverged fragments "
                f"should be flagged, not iterated forever"
            ),
            hint="model OPC typically converges within ~10 iterations",
        )
    if recipe.damping < 0.15:
        yield Diagnostic(
            code="LNT105",
            severity=Severity.WARNING,
            message=(
                f"damping={recipe.damping:g} moves edges by under 15% of "
                f"the measured EPE per iteration; convergence will stall "
                f"against max_iterations"
            ),
            hint="use damping in roughly [0.3, 0.8]",
        )


@rule(
    "LNT106",
    "ambit",
    "Proximity ambit too small for the configured optics.",
    requires=("litho",),
)
def check_ambit(ctx: LintContext) -> Iterator[Diagnostic]:
    litho = ctx.litho
    scale = _lambda_over_na(litho)
    rayleigh_nm = 0.61 * scale
    if litho.ambit_nm < rayleigh_nm:
        yield Diagnostic(
            code="LNT106",
            severity=Severity.ERROR,
            message=(
                f"ambit_nm={litho.ambit_nm:g} is below the Rayleigh "
                f"resolution {rayleigh_nm:.0f} nm; simulation windows "
                f"exclude the very neighbours that set the image"
            ),
            hint=f"use ambit_nm >= {scale:.0f} (lambda/NA)",
        )
    elif litho.ambit_nm < scale:
        yield Diagnostic(
            code="LNT106",
            severity=Severity.WARNING,
            message=(
                f"ambit_nm={litho.ambit_nm:g} is below lambda/NA = "
                f"{scale:.0f} nm; second-ring proximity effects are "
                f"truncated"
            ),
            hint=f"prefer ambit_nm >= {scale:.0f}",
        )
