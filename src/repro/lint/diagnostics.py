"""Diagnostic value types of the static preflight engine.

A :class:`Diagnostic` is one finding: a stable rule code (``LNT101``),
a severity, a human message with an optional fix hint, and -- for layout
findings -- the offending location and owning cell.  A :class:`LintReport`
is an ordered collection with the aggregation the flows and the CLI need:
error gating, per-code grouping, and the compact summary dict persisted
into the run ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..geometry import Rect


class Severity(Enum):
    """How bad one finding is (orders worst-first)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` string of this severity."""
        return "note" if self is Severity.INFO else self.value


_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One static finding."""

    code: str
    severity: Severity
    message: str
    hint: Optional[str] = None
    #: Layout location of the finding, when it has one.
    location: Optional[Rect] = None
    #: Owning cell of ``location``, when a hierarchy was available.
    cell: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.hint is not None:
            data["hint"] = self.hint
        if self.location is not None:
            data["location"] = [
                self.location.x1, self.location.y1,
                self.location.x2, self.location.y2,
            ]
        if self.cell is not None:
            data["cell"] = self.cell
        return data

    def __str__(self) -> str:
        where = ""
        if self.location is not None:
            where = f" at {tuple(self.location)}"
            if self.cell:
                where += f" in {self.cell!r}"
        line = f"{self.code} {self.severity.value}:{where} {self.message}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line


class LintReport:
    """Ordered diagnostics plus the aggregations preflight gates on."""

    def __init__(self, diagnostics: Sequence[Diagnostic] = ()):
        self.diagnostics: List[Diagnostic] = sorted(
            diagnostics, key=lambda d: (d.severity.rank, d.code)
        )

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        return (
            f"LintReport({self.error_count} errors, "
            f"{self.warning_count} warnings, {self.info_count} info)"
        )

    def of_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.of_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.of_severity(Severity.WARNING)

    @property
    def error_count(self) -> int:
        return len(self.errors)

    @property
    def warning_count(self) -> int:
        return len(self.warnings)

    @property
    def info_count(self) -> int:
        return len(self.of_severity(Severity.INFO))

    @property
    def has_errors(self) -> bool:
        return self.error_count > 0

    @property
    def is_clean(self) -> bool:
        """True when nothing at all fired (not even info)."""
        return not self.diagnostics

    def codes(self) -> List[str]:
        """Distinct rule codes that fired, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def summary_dict(self) -> Dict[str, Any]:
        """The compact summary persisted into a run record (schema 1.2)."""
        return {
            "ok": not self.has_errors,
            "errors": self.error_count,
            "warnings": self.warning_count,
            "info": self.info_count,
            "codes": self.codes(),
        }
