"""Static pre- and postflight diagnostics for OPC jobs (``repro.lint``).

Analyzes a layout plus its recipe/litho/parallel configuration *without
running the simulator* and emits structured diagnostics with stable rule
codes (``LNT1xx`` config, ``LNT2xx`` layout, ``LNT3xx`` pipeline,
``MRC1xx`` corrected-mask manufacturability), severities, layout
locations with owning cells, and fix hints.  Reports render as text,
JSON, or SARIF 2.1.0.

Entry points:

* :func:`run_lint` over a :class:`LintContext` -- the raw engine;
* :func:`preflight_tapeout` / :func:`preflight_correction` -- the
  fail-fast gates the flows call (raise
  :class:`~repro.errors.PreflightError` on error-severity findings);
* :func:`postflight_mask` / :func:`gate_postflight` -- the symmetric
  output gate on corrected masks (raise
  :class:`~repro.errors.PostflightError` before anything is exported);
* ``repro check`` / ``repro mrc`` -- the CLI front ends.
"""

from .diagnostics import Diagnostic, LintReport, Severity
from .engine import LintContext, LintRule, get_rule, registered_rules, rule, run_lint
from .emit import sarif_log, to_json, to_sarif, to_text

# Importing the rule modules registers every built-in rule.
from . import rules_config  # noqa: E402,F401
from . import rules_layout  # noqa: E402,F401
from . import rules_pipeline  # noqa: E402,F401
from . import rules_mask  # noqa: E402,F401

from .preflight import gate, preflight_correction, preflight_tapeout
from .postflight import PostflightResult, gate_postflight, postflight_mask
from .rules_mask import MRC_CODES, mrc_lint_report

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintReport",
    "LintRule",
    "MRC_CODES",
    "PostflightResult",
    "Severity",
    "gate",
    "gate_postflight",
    "get_rule",
    "mrc_lint_report",
    "postflight_mask",
    "preflight_correction",
    "preflight_tapeout",
    "registered_rules",
    "rule",
    "run_lint",
    "sarif_log",
    "to_json",
    "to_sarif",
    "to_text",
]
