"""Static preflight diagnostics for OPC jobs (``repro.lint``).

Analyzes a layout plus its recipe/litho/parallel configuration *without
running the simulator* and emits structured diagnostics with stable rule
codes (``LNT1xx`` config, ``LNT2xx`` layout, ``LNT3xx`` pipeline),
severities, layout locations with owning cells, and fix hints.  Reports
render as text, JSON, or SARIF 2.1.0.

Entry points:

* :func:`run_lint` over a :class:`LintContext` -- the raw engine;
* :func:`preflight_tapeout` / :func:`preflight_correction` -- the
  fail-fast gates the flows call (raise
  :class:`~repro.errors.PreflightError` on error-severity findings);
* ``repro check`` -- the CLI front end.
"""

from .diagnostics import Diagnostic, LintReport, Severity
from .engine import LintContext, LintRule, get_rule, registered_rules, rule, run_lint
from .emit import sarif_log, to_json, to_sarif, to_text

# Importing the rule modules registers every built-in rule.
from . import rules_config  # noqa: E402,F401
from . import rules_layout  # noqa: E402,F401
from . import rules_pipeline  # noqa: E402,F401

from .preflight import gate, preflight_correction, preflight_tapeout

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintReport",
    "LintRule",
    "Severity",
    "gate",
    "get_rule",
    "preflight_correction",
    "preflight_tapeout",
    "registered_rules",
    "rule",
    "run_lint",
    "sarif_log",
    "to_json",
    "to_sarif",
    "to_text",
]
