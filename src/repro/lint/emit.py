"""Lint report emitters: human text, machine JSON, and SARIF 2.1.0.

SARIF is the interchange format CI systems and editors ingest natively
(GitHub code scanning, VS Code SARIF viewer).  Layout findings do not
map onto SARIF's line/column regions, so the physical rectangle rides in
each result's ``properties`` bag and the logical location carries the
owning cell.  Output is fully deterministic -- no timestamps, stable
ordering -- so SARIF files are snapshot-testable and diffable run to
run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .diagnostics import Diagnostic, LintReport
from .engine import registered_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/repro/repro"


def to_text(report: LintReport) -> str:
    """The human-readable form printed by ``repro check``."""
    lines = [str(diagnostic) for diagnostic in report]
    lines.append(
        f"{report.error_count} error(s), {report.warning_count} "
        f"warning(s), {report.info_count} info"
    )
    return "\n".join(lines)


def to_json(report: LintReport) -> str:
    """A machine-readable JSON document of the full report."""
    payload = {
        "tool": TOOL_NAME,
        "summary": report.summary_dict(),
        "diagnostics": [d.to_dict() for d in report],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def to_sarif(report: LintReport, artifact: Optional[str] = None) -> str:
    """A SARIF 2.1.0 log of the report as a JSON string.

    ``artifact`` (the layout file path, when one exists) becomes the
    physical artifact location of every result; findings without a
    layout source are emitted without a physical location, which SARIF
    permits.
    """
    return json.dumps(
        sarif_log(report, artifact=artifact), indent=2, sort_keys=True
    )


def sarif_log(
    report: LintReport, artifact: Optional[str] = None
) -> Dict[str, Any]:
    """The SARIF log as a plain dict (for tests and embedding)."""
    rules = [
        {
            "id": lint_rule.code,
            "name": lint_rule.name,
            "shortDescription": {"text": lint_rule.description},
        }
        for lint_rule in registered_rules()
    ]
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    results = [
        _sarif_result(diagnostic, rule_index, artifact)
        for diagnostic in report
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def _sarif_result(
    diagnostic: Diagnostic,
    rule_index: Dict[str, int],
    artifact: Optional[str],
) -> Dict[str, Any]:
    message = diagnostic.message
    if diagnostic.hint:
        message += f" Hint: {diagnostic.hint}"
    result: Dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": diagnostic.severity.sarif_level,
        "message": {"text": message},
    }
    if diagnostic.code in rule_index:
        result["ruleIndex"] = rule_index[diagnostic.code]
    location: Dict[str, Any] = {}
    if artifact is not None:
        location["physicalLocation"] = {
            "artifactLocation": {"uri": artifact}
        }
    if diagnostic.cell is not None:
        location["logicalLocations"] = [
            {"name": diagnostic.cell, "kind": "module"}
        ]
    if location:
        result["locations"] = [location]
    if diagnostic.location is not None:
        box = diagnostic.location
        result["properties"] = {
            "layoutRect_nm": [box.x1, box.y1, box.x2, box.y2]
        }
    return result
