"""Fail-fast preflight: the lint engine wired in front of the flows.

``tapeout_region`` / ``correct_region`` call these before touching the
simulator.  Errors raise :class:`~repro.errors.PreflightError` carrying
the full report, so a bad job dies in milliseconds instead of burning a
worker pool -- the production posture the paper's late-surprise problem
demands.
"""

from __future__ import annotations

from typing import Optional

from ..errors import PreflightError
from ..geometry import Region
from ..layout import Cell
from ..litho import LithoConfig
from .diagnostics import LintReport
from .engine import LintContext, run_lint


def preflight_tapeout(
    drawn: Region,
    recipe,
    litho: Optional[LithoConfig] = None,
    cell: Optional[Cell] = None,
) -> LintReport:
    """Statically lint a tapeout job; raise on any error-severity finding.

    ``recipe`` is a :class:`~repro.flow.TapeoutRecipe` (duck-typed).
    Returns the report (which may still hold warnings/info) when the job
    is viable.
    """
    context = LintContext.for_tapeout(
        recipe, litho=litho, layout=drawn, cell=cell
    )
    return gate(run_lint(context), stage="tapeout")


def preflight_correction(
    target: Region,
    level: str,
    litho: Optional[LithoConfig] = None,
    model_recipe=None,
    tiling=None,
    parallel=None,
    sraf_recipe=None,
    dark_field: bool = False,
) -> LintReport:
    """Statically lint a direct correction job; raise on errors."""
    context = LintContext(
        layout=target,
        litho=litho,
        level=level,
        model_recipe=model_recipe,
        tiling=tiling,
        parallel=parallel,
        sraf_recipe=sraf_recipe,
        dark_field=dark_field,
    )
    return gate(run_lint(context), stage="correct")


def gate(report: LintReport, stage: str = "preflight") -> LintReport:
    """Raise :class:`PreflightError` when ``report`` holds errors."""
    if report.has_errors:
        heads = "; ".join(str(d) for d in report.errors[:3])
        more = report.error_count - min(report.error_count, 3)
        if more:
            heads += f"; and {more} more"
        raise PreflightError(
            f"{stage} preflight found {report.error_count} blocking "
            f"problem(s): {heads}",
            diagnostics=report.diagnostics,
        )
    return report
