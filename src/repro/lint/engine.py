"""The lint engine: rule registry, analysis context, and the runner.

Rules are small functions registered with the :func:`rule` decorator.
Each declares the context inputs it ``requires``; :func:`run_lint` skips
any rule whose inputs are absent, so the same rule set serves a
config-only check (no layout), a layout-only check (no recipe), and the
full tapeout preflight.

Nothing in this package runs the simulator -- every rule is pure
geometry, graph, or arithmetic work, which is what makes the preflight
cheap enough to run before every expensive correction job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..analysis import PitchRestriction
from ..errors import ReproError
from ..geometry import Coord, Region
from ..layout import Cell
from ..litho import LithoConfig
from ..opc import (
    MRCRules,
    ModelOPCRecipe,
    PSMRecipe,
    ParallelSpec,
    RetargetRules,
    SRAFRecipe,
    TilingSpec,
)
from .diagnostics import Diagnostic, LintReport


@dataclass
class LintContext:
    """Everything a lint run may look at.  All inputs are optional.

    ``layout`` is the drawn geometry of one layer (the OPC target);
    ``raw_loops`` are vertex loops *before* any sanitisation, for the
    degeneracy rules (the :class:`~repro.geometry.Region` constructor
    silently strips degenerate loops, so they must be checked upstream).
    ``level`` is a correction-level string (``"none"``/``"rule"``/
    ``"model"``/``"model+sraf"``) rather than the flow enum so this
    package never imports :mod:`repro.flow` (which imports it back).
    """

    layout: Optional[Region] = None
    #: Corrected mask-side geometry for the postflight MRC rules (the
    #: MRC1xx family); ``layout`` stays the *drawn* target geometry.
    mask: Optional[Region] = None
    raw_loops: Optional[Sequence[Sequence[Coord]]] = None
    cell: Optional[Cell] = None
    litho: Optional[LithoConfig] = None
    level: Optional[str] = None
    mrc: Optional[MRCRules] = None
    model_recipe: Optional[ModelOPCRecipe] = None
    tiling: Optional[TilingSpec] = None
    parallel: Optional[ParallelSpec] = None
    sraf_recipe: Optional[SRAFRecipe] = None
    retarget_rules: Optional[RetargetRules] = None
    smooth_tolerance_nm: Optional[int] = None
    dark_field: bool = False
    #: Mask manufacturing grid; vertices must land on multiples of it.
    #: The library default of 1 dbu makes every integer layout legal.
    mask_grid_nm: int = 1
    #: Known forbidden-pitch ranges of the process, when calibrated.
    pitch_restrictions: Tuple[PitchRestriction, ...] = ()
    #: Enables the phase-conflict rule for alternating-PSM flows.
    psm_recipe: Optional[PSMRecipe] = None
    #: Source file of the layout (GDS path) for SARIF artifact URIs.
    artifact: Optional[str] = None
    _merged: Optional[Region] = field(default=None, repr=False, compare=False)

    @classmethod
    def for_tapeout(
        cls,
        recipe,
        litho: Optional[LithoConfig] = None,
        layout: Optional[Region] = None,
        cell: Optional[Cell] = None,
        **overrides,
    ) -> "LintContext":
        """A context mirroring one :class:`~repro.flow.TapeoutRecipe`.

        ``recipe`` is duck-typed (attribute access only) so this module
        stays importable without :mod:`repro.flow`.
        """
        level = getattr(recipe, "level", None)
        ctx = cls(
            layout=layout,
            cell=cell,
            litho=litho,
            level=getattr(level, "value", level),
            mrc=getattr(recipe, "mrc", None),
            model_recipe=getattr(recipe, "model_recipe", None),
            tiling=getattr(recipe, "tiling", None),
            parallel=getattr(recipe, "parallel", None),
            retarget_rules=getattr(recipe, "retarget_rules", None),
            smooth_tolerance_nm=getattr(recipe, "smooth_tolerance_nm", None),
            dark_field=bool(getattr(recipe, "dark_field", False)),
        )
        for key, value in overrides.items():
            if not hasattr(ctx, key):
                raise ReproError(f"unknown lint context field {key!r}")
            setattr(ctx, key, value)
        return ctx

    def merged_layout(self) -> Optional[Region]:
        """The canonical layout (cached -- several rules need it)."""
        if self.layout is None:
            return None
        if self._merged is None:
            self._merged = self.layout.merged()
        return self._merged

    def has(self, name: str) -> bool:
        """Whether the named context input is present (non-``None``)."""
        value = getattr(self, name)
        if name == "pitch_restrictions":
            return bool(value)
        return value is not None


#: One registered rule: metadata plus the check function.
@dataclass(frozen=True)
class LintRule:
    code: str
    name: str
    description: str
    requires: Tuple[str, ...]
    func: Callable[[LintContext], Iterator[Diagnostic]]


_REGISTRY: Dict[str, LintRule] = {}


def rule(
    code: str, name: str, description: str, requires: Sequence[str] = ()
) -> Callable:
    """Register a generator of :class:`Diagnostic`\\ s as a lint rule."""

    def register(func: Callable[[LintContext], Iterator[Diagnostic]]):
        if code in _REGISTRY:
            raise ReproError(f"duplicate lint rule code {code}")
        _REGISTRY[code] = LintRule(
            code=code,
            name=name,
            description=description,
            requires=tuple(requires),
            func=func,
        )
        return func

    return register


def registered_rules() -> List[LintRule]:
    """Every registered rule, sorted by code (stable for emitters)."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> LintRule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ReproError(f"unknown lint rule {code!r}") from None


def run_lint(
    context: LintContext, codes: Optional[Sequence[str]] = None
) -> LintReport:
    """Run every applicable rule over ``context``.

    ``codes`` restricts the run to an explicit rule subset.  Rules whose
    required inputs are missing are skipped silently -- a config-only
    check simply never sees the layout rules.
    """
    selected = (
        registered_rules()
        if codes is None
        else [get_rule(code) for code in codes]
    )
    diagnostics: List[Diagnostic] = []
    for lint_rule in selected:
        if not all(context.has(name) for name in lint_rule.requires):
            continue
        diagnostics.extend(lint_rule.func(context))
    return LintReport(diagnostics)
