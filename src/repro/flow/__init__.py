"""End-to-end flows and the experiment harness.

Public surface: :class:`CorrectionLevel`, :func:`correct_region`,
:func:`correct_cell_layer`, :class:`FlowResult`, plus table/timing helpers
(:func:`format_table`, :func:`print_table`, :func:`timed`).
"""

from .correct import (
    CorrectionLevel,
    FlowResult,
    correct_cell_layer,
    correct_region,
    flow_quality,
)
from .experiments import format_table, print_table, timed
from .reporting import flow_report_markdown, hotspot_markdown
from .tapeout import (
    TapeoutRecipe,
    TapeoutResult,
    tapeout_cell_layer,
    tapeout_quality,
    tapeout_region,
    tapeout_spatial,
)

__all__ = [
    "CorrectionLevel",
    "FlowResult",
    "TapeoutRecipe",
    "TapeoutResult",
    "correct_cell_layer",
    "correct_region",
    "flow_quality",
    "flow_report_markdown",
    "format_table",
    "hotspot_markdown",
    "print_table",
    "tapeout_cell_layer",
    "tapeout_quality",
    "tapeout_region",
    "tapeout_spatial",
    "timed",
]
