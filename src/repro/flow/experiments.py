"""Experiment-harness utilities: table formatting and run timing.

Every benchmark prints its table/figure series through these helpers so
EXPERIMENTS.md entries and bench output share one format.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, List, Sequence

from ..errors import ReproError


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width ASCII table (floats rendered to 2 decimals)."""
    if not headers:
        raise ReproError("table needs headers")
    rendered: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> None:
    """Format and print a table."""
    print(format_table(headers, rows, title))


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@contextmanager
def timed(label: str = "") -> Iterator[List[float]]:
    """Context manager yielding a one-element list holding elapsed seconds.

    >>> with timed() as t:
    ...     _ = sum(range(10))
    >>> t[0] >= 0
    True
    """
    holder = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
