"""End-to-end correction flows: drawn layer in, mask-ready layer out.

One call applies a named correction level -- none, rule-based,
model-based, or model-based plus SRAFs -- to a layer of a cell, and
returns everything the experiments tabulate: the corrected geometry, the
SRAFs, OPC convergence, mask data statistics and the mask spec to
simulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..errors import ReproError
from ..geometry import Rect, Region
from ..layout import Cell, Layer
from ..lint import gate_postflight, postflight_mask, preflight_correction
from ..litho import BinaryMaskBuilder, LithoSimulator, MaskSpec, binary_mask
from ..mask import MaskDataStats, mask_data_stats
from ..verify.mrc import MRCReport, MRCRules
from ..obs import (
    current_span as _obs_current_span,
    gauge_set as _obs_gauge_set,
    publish_quality as _obs_publish_quality,
    span as _obs_span,
)
from ..obs import events as _obs_events
from ..obs import prof as _obs_prof
from ..obs import runs as _obs_runs
from ..opc import (
    ModelOPCRecipe,
    OPCResult,
    ParallelSpec,
    RuleOPCRecipe,
    SRAFRecipe,
    TilingSpec,
    insert_srafs,
    model_opc_tiled,
    rule_opc,
)


class CorrectionLevel(Enum):
    """The four correction states every impact table compares."""

    NONE = "none"
    RULE = "rule"
    MODEL = "model"
    MODEL_SRAF = "model+sraf"


@dataclass
class FlowResult:
    """Everything produced by one correction run."""

    level: CorrectionLevel
    target: Region
    corrected: Region
    srafs: Region
    mask: MaskSpec
    data: MaskDataStats
    opc: Optional[OPCResult] = None
    runtime_s: float = 0.0
    #: Localized postflight MRC findings (None when the gate was skipped).
    mrc_report: Optional[MRCReport] = None

    @property
    def mask_region(self) -> Region:
        """Main features plus SRAFs (what MRC checks)."""
        return (self.corrected | self.srafs) if not self.srafs.is_empty else self.corrected


def flow_quality(
    data: MaskDataStats,
    opc: Optional[OPCResult],
    mrc: Optional[MRCReport] = None,
) -> dict:
    """First-class quality metrics of one correction run.

    These land in a :class:`~repro.obs.runs.RunRecord`'s quality dict
    and are what ``repro runs check`` gates besides wall time: mask
    figure count and data volume, plus OPC convergence and residual EPE
    when a model run produced them, plus -- when the postflight ran --
    the MRC violation count and the fracture shot estimate.
    """
    quality = {
        "figures": data.figures,
        "vertices": data.vertices,
        "shots": data.shots,
        "gds_bytes": data.gds_bytes,
    }
    if opc is not None:
        quality["opc_iterations"] = opc.iterations
        quality["opc_converged"] = int(opc.converged)
        if opc.final_rms_epe_nm is not None:
            quality["epe_rms_nm"] = opc.final_rms_epe_nm
        if opc.final_max_epe_nm is not None:
            quality["epe_max_nm"] = opc.final_max_epe_nm
    if mrc is not None:
        quality["mrc_violations"] = len(mrc.violations)
        quality["mask_shot_count"] = mrc.shot_count
    return quality


def correct_region(
    target: Region,
    level: CorrectionLevel,
    simulator: Optional[LithoSimulator] = None,
    window: Optional[Rect] = None,
    dose: float = 1.0,
    rule_recipe: RuleOPCRecipe = RuleOPCRecipe(),
    model_recipe: ModelOPCRecipe = ModelOPCRecipe(),
    sraf_recipe: SRAFRecipe = SRAFRecipe(),
    tiling: TilingSpec = TilingSpec(),
    dark_field: bool = False,
    parallel: Optional[ParallelSpec] = None,
    preflight: bool = True,
    mrc: Optional[MRCRules] = None,
    postflight: bool = True,
) -> FlowResult:
    """Apply ``level`` to a drawn region and collect impact statistics.

    Model-based levels need ``simulator`` (and optionally ``window``; the
    target bounding box plus margin by default).  Model correction runs
    tiled, so arbitrarily large windows are fine.  ``dark_field=True``
    treats features as clear openings on chrome (contact/via layers) and
    flips the model-OPC failure semantics accordingly.  ``parallel``
    fans the tiles out over a multiprocessing pool (result byte-identical
    to the serial run; see :class:`~repro.opc.ParallelSpec`).
    ``preflight`` statically lints the job first (see :mod:`repro.lint`)
    and raises :class:`~repro.errors.PreflightError` on blocking
    findings; ``postflight`` symmetrically runs the localized MRC engine
    over the corrected mask (limits from ``mrc``, library defaults
    otherwise) and raises :class:`~repro.errors.PostflightError` on
    blocking defects before anything can be exported.

    Correction levels own the mask-side geometry, so their output gets
    the standard post-OPC MRC repair (fragmentation jogs routinely
    leave sub-limit notches; :func:`repro.opc.repair_mask`) before the
    gate -- postflight is then a convergence assertion.  Level ``none``
    is a pure passthrough: the drawn geometry is never silently edited,
    so an unwritable input dies at the gate instead of being repaired
    into something the designer did not draw.
    """
    import dataclasses

    # Bracket the flow with run.start/run.end on the live event bus; a
    # correct nested inside a tapeout adds no events of its own.
    with _obs_events.run_scope("correct") as run_events, _obs_span(
        "correct", level=level.value
    ) as correct_span:
        merged = target.merged()
        preflight_summary = None
        with _obs_span(
            "correct.preflight", skipped=not preflight
        ) as preflight_span:
            if preflight:
                report = preflight_correction(
                    merged,
                    level.value,
                    litho=simulator.config if simulator is not None else None,
                    model_recipe=model_recipe,
                    tiling=tiling,
                    parallel=parallel,
                    sraf_recipe=sraf_recipe,
                    dark_field=dark_field,
                )
                preflight_summary = report.summary_dict()
                preflight_span.set(
                    errors=report.error_count,
                    warnings=report.warning_count,
                    info=report.info_count,
                )
        srafs = Region()
        opc_result: Optional[OPCResult] = None

        if level == CorrectionLevel.NONE:
            corrected = merged
        elif level == CorrectionLevel.RULE:
            opc_result = rule_opc(merged, rule_recipe)
            corrected = opc_result.corrected
        elif level in (CorrectionLevel.MODEL, CorrectionLevel.MODEL_SRAF):
            if simulator is None:
                raise ReproError(f"{level.value} correction needs a simulator")
            if window is None:
                box = merged.bbox()
                if box is None:
                    raise ReproError("cannot correct an empty region")
                window = box.expanded(200)
            if level == CorrectionLevel.MODEL_SRAF:
                with _obs_span("correct.sraf"):
                    srafs = insert_srafs(merged, sraf_recipe)
                builder = BinaryMaskBuilder(dark_field=dark_field, srafs=srafs)
            else:
                builder = BinaryMaskBuilder(dark_field=dark_field)
            if dark_field:
                # Contact holes couple all four edges through one small
                # aperture: the effective loop gain is ~4x a line edge's, so
                # stability needs proportionally lower damping.
                recipe = dataclasses.replace(
                    model_recipe,
                    bright_feature=True,
                    damping=min(model_recipe.damping, 0.3),
                )
            else:
                recipe = model_recipe
            opc_result = model_opc_tiled(
                merged, simulator, window, recipe,
                tiling=tiling, mask_builder=builder, dose=dose,
                parallel=parallel,
                mrc_rules=(mrc or MRCRules()) if postflight else None,
            )
            corrected = opc_result.corrected
        else:  # pragma: no cover - enum is exhaustive
            raise ReproError(f"unknown correction level {level}")

        # Post-OPC MRC repair, mirroring the tapeout pipeline: OPC edge
        # moves routinely leave sub-limit notches and slivers that the
        # standard fix-up (fill spaces, trim widths) removes.  Level
        # ``none`` never repairs -- drawn geometry is the user's, and
        # deleting an unwritable feature is worse than rejecting it.
        with _obs_span(
            "correct.repair", skipped=level == CorrectionLevel.NONE
        ) as repair_span:
            if level != CorrectionLevel.NONE:
                from ..opc import repair_mask

                before = corrected
                corrected = repair_mask(corrected, mrc or MRCRules())
                repair_span.set(
                    changed=not (corrected ^ before).is_empty
                )

        mask = binary_mask(
            corrected,
            dark_field=dark_field,
            srafs=srafs if not srafs.is_empty else None,
        )
        combined = (corrected | srafs) if not srafs.is_empty else corrected
        data = mask_data_stats(combined)
        correct_span.set(figures=data.figures, vertices=data.vertices)
        _obs_gauge_set("mask.vertices", data.vertices)

        # The mirror of the preflight gate: statically verify the mask
        # we are about to hand downstream, and refuse to hand it over
        # when the mask shop would bounce it.
        mrc_report: Optional[MRCReport] = None
        with _obs_span(
            "correct.postflight", skipped=not postflight
        ) as postflight_span:
            if postflight:
                post = postflight_mask(combined, mrc)
                mrc_report = post.mrc
                postflight_span.set(
                    errors=post.report.error_count,
                    warnings=post.report.warning_count,
                    violations=len(post.mrc.violations),
                    shots=post.mrc.shot_count,
                )
                _obs_gauge_set("mask.shot_count", post.mrc.shot_count)
                _obs_gauge_set("mask.figure_count", post.mrc.figure_count)
                _obs_gauge_set("mask.vertex_count", post.mrc.vertex_count)
                gate_postflight(post, stage="correct")
    # Standalone instrumented runs (not nested under a tapeout span) land
    # in the persistent run ledger when $REPRO_RUNS_DIR is set.
    if (
        correct_span.recorded
        and _obs_current_span() is None
        and _obs_runs.auto_enabled()
    ):
        quality = flow_quality(data, opc_result, mrc_report)
        _obs_publish_quality(quality)
        _obs_runs.record_run(
            label="correct",
            config={
                "kind": "correct",
                "level": level,
                "dose": dose,
                "dark_field": dark_field,
                "rule_recipe": rule_recipe,
                "model_recipe": model_recipe,
                "sraf_recipe": sraf_recipe,
                "tiling": tiling,
                "parallel": parallel,
                "litho": simulator.config if simulator is not None else None,
            },
            roots=[correct_span],
            quality=quality,
            preflight=preflight_summary,
            profile=_obs_prof.active_summary(),
            events=run_events,
            mrc=mrc_report.summary_dict() if mrc_report is not None else None,
        )
    return FlowResult(
        level=level,
        target=merged,
        corrected=corrected,
        srafs=srafs,
        mask=mask,
        data=data,
        opc=opc_result,
        runtime_s=correct_span.duration_s,
        mrc_report=mrc_report,
    )


def correct_cell_layer(
    cell: Cell,
    layer: Layer,
    level: CorrectionLevel,
    simulator: Optional[LithoSimulator] = None,
    dose: float = 1.0,
    **recipes,
) -> FlowResult:
    """Flatten a cell's layer and run :func:`correct_region` on it."""
    target = cell.flat_region(layer)
    if target.is_empty:
        raise ReproError(f"cell {cell.name!r} has nothing on {layer}")
    return correct_region(
        target, level, simulator=simulator, dose=dose, **recipes
    )
