"""Markdown reporting of correction flows.

Turns a set of :class:`~repro.flow.correct.FlowResult` objects into the
markdown table a tape-out review would circulate: quality, data volume,
cost and runtime per correction level.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ReproError
from ..mask import MaskCostModel, write_time_estimate_s
from .correct import CorrectionLevel, FlowResult


def flow_report_markdown(
    results: Dict[CorrectionLevel, FlowResult],
    title: str = "Correction-level impact",
    cost_model: Optional[MaskCostModel] = None,
) -> str:
    """A markdown report comparing correction levels.

    Growth columns are relative to the ``NONE`` level when present,
    otherwise to the first level given.
    """
    if not results:
        raise ReproError("need at least one flow result")
    ordered = sorted(results.items(), key=lambda kv: list(CorrectionLevel).index(kv[0]))
    baseline = results.get(CorrectionLevel.NONE, ordered[0][1]).data
    model = cost_model or MaskCostModel()

    lines: List[str] = [f"## {title}", ""]
    lines.append(
        "| level | figures | vertices | shots | GDS bytes | vertex growth "
        "| write time (s) | mask cost ($) | OPC runtime (s) | converged |"
    )
    lines.append("|---|---|---|---|---|---|---|---|---|---|")
    for level, result in ordered:
        data = result.data
        growth = data.ratio_to(baseline)
        converged = "-" if result.opc is None else (
            "yes" if result.opc.converged else "no"
        )
        lines.append(
            f"| {level.value} | {data.figures} | {data.vertices} | {data.shots} "
            f"| {data.gds_bytes} | x{growth.vertices:.1f} "
            f"| {write_time_estimate_s(data):.3f} "
            f"| {model.cost_usd(data):,.0f} "
            f"| {result.runtime_s:.2f} | {converged} |"
        )
    lines.append("")
    worst = max(ordered, key=lambda kv: kv[1].data.vertices)
    lines.append(
        f"Worst data volume: **{worst[0].value}** at {worst[1].data.vertices} "
        f"vertices (x{worst[1].data.ratio_to(baseline).vertices:.1f} over "
        "uncorrected)."
    )
    return "\n".join(lines)
