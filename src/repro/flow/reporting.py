"""Markdown reporting of correction flows.

Turns a set of :class:`~repro.flow.correct.FlowResult` objects into the
markdown table a tape-out review would circulate: quality, data volume,
cost and runtime per correction level.  When a trace root span from an
instrumented run (:mod:`repro.obs`) is supplied, the per-stage runtime
breakdown is appended to the report.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import ReproError
from ..mask import MaskCostModel, write_time_estimate_s
from ..obs import Span, span_tree_markdown
from .correct import CorrectionLevel, FlowResult

#: The report's table header, single source of truth for column count.
REPORT_COLUMNS = (
    "level",
    "figures",
    "vertices",
    "shots",
    "GDS bytes",
    "vertex growth",
    "write time (s)",
    "mask cost ($)",
    "OPC runtime (s)",
    "converged",
)


def _markdown_row(cells: Sequence[str]) -> str:
    """One markdown table row, enforcing the report's column count."""
    if len(cells) != len(REPORT_COLUMNS):
        raise ReproError(
            f"report row has {len(cells)} cells, "
            f"expected {len(REPORT_COLUMNS)}"
        )
    return "| " + " | ".join(cells) + " |"


def flow_report_markdown(
    results: Dict[CorrectionLevel, FlowResult],
    title: str = "Correction-level impact",
    cost_model: Optional[MaskCostModel] = None,
    trace: Optional[Union[Span, Sequence[Span]]] = None,
) -> str:
    """A markdown report comparing correction levels.

    Growth columns are relative to the ``NONE`` level when present,
    otherwise to the first level given.  ``trace`` -- a root span (or
    spans) captured around the runs -- appends a per-stage runtime
    breakdown.
    """
    if not results:
        raise ReproError("need at least one flow result")
    ordered = sorted(results.items(), key=lambda kv: list(CorrectionLevel).index(kv[0]))
    baseline = results.get(CorrectionLevel.NONE, ordered[0][1]).data
    model = cost_model or MaskCostModel()

    lines: List[str] = [f"## {title}", ""]
    lines.append(_markdown_row(REPORT_COLUMNS))
    lines.append(_markdown_row(["---"] * len(REPORT_COLUMNS)))
    for level, result in ordered:
        data = result.data
        growth = data.ratio_to(baseline)
        converged = "-" if result.opc is None else (
            "yes" if result.opc.converged else "no"
        )
        lines.append(
            _markdown_row(
                [
                    level.value,
                    str(data.figures),
                    str(data.vertices),
                    str(data.shots),
                    str(data.gds_bytes),
                    f"x{growth.vertices:.1f}",
                    f"{write_time_estimate_s(data):.3f}",
                    f"{model.cost_usd(data):,.0f}",
                    f"{result.runtime_s:.2f}",
                    converged,
                ]
            )
        )
    lines.append("")
    worst = max(ordered, key=lambda kv: kv[1].data.vertices)
    lines.append(
        f"Worst data volume: **{worst[0].value}** at {worst[1].data.vertices} "
        f"vertices (x{worst[1].data.ratio_to(baseline).vertices:.1f} over "
        "uncorrected)."
    )
    if trace is not None:
        lines += ["", "### Stage breakdown", "", span_tree_markdown(trace)]
    return "\n".join(lines)


def hotspot_markdown(payload: Dict[str, Any], top: int = 10) -> str:
    """Markdown tables over one spatial hotspot payload.

    ``payload`` is the dict :func:`repro.obs.spatial.spatial_summary`
    builds (and run records carry as ``spatial``): a ranked worst-site
    table plus the per-tile convergence summary.  This is the text form
    of what the SVG hotspot map shows.
    """
    lines: List[str] = ["### Worst EPE sites", ""]
    sites = payload.get("worst_sites") or []
    if sites:
        lines += [
            "| # | x (nm) | y (nm) | cell | tag | EPE (nm) | state |",
            "|---|---|---|---|---|---|---|",
        ]
        for rank, site in enumerate(sites[:top], start=1):
            epe = (
                "MISSING"
                if site.get("epe_nm") is None
                else f"{site['epe_nm']:+.2f}"
            )
            lines.append(
                f"| {rank} | {site.get('x')} | {site.get('y')} "
                f"| {site.get('cell') or '-'} | {site.get('tag', '')} "
                f"| {epe} | {site.get('state', 'found')} |"
            )
        missing = payload.get("missing_sites", 0)
        lines += [
            "",
            f"{payload.get('site_count', len(sites))} sites measured, "
            f"{missing} missing edge(s).",
        ]
    else:
        lines.append("(no EPE sites recorded)")
    tiles = payload.get("tiles") or []
    if tiles:
        lines += [
            "",
            "### Tile convergence",
            "",
            f"{payload.get('tiles_converged', 0)}/{len(tiles)} "
            "tile(s) converged.",
            "",
            "| tile | iterations | final RMS (nm) | final max (nm) | status |",
            "|---|---|---|---|---|",
        ]
        for tile in tiles:
            status = "converged" if tile.get("converged") else "**stalled**"
            lines.append(
                f"| {tile.get('index')} | {tile.get('iterations')} "
                f"| {tile.get('final_rms_nm', '-')} "
                f"| {tile.get('final_max_nm', '-')} | {status} |"
            )
    return "\n".join(lines)
