"""The one-call tape-out pipeline: drawn layer in, writable mask out.

Chains the production sequence -- retarget, correct (tiled model OPC or
cheaper levels), jog-smooth, MRC repair -- and verifies the result with
ORC, returning everything a sign-off review needs.  This is the function
a downstream user adopting the library calls first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from ..geometry import Rect, Region, smooth_jogs
from ..layout import Cell, Layer
from ..litho import LithoSimulator, binary_mask
from ..mask import MaskDataStats, mask_data_stats
from ..obs import current_span as _obs_current_span, span as _obs_span
from ..obs import publish_quality as _obs_publish_quality
from ..obs import events as _obs_events
from ..obs import prof as _obs_prof
from ..obs import runs as _obs_runs
from ..obs import spatial as _obs_spatial
from ..opc import (
    MRCRules,
    ModelOPCRecipe,
    ParallelSpec,
    RetargetRules,
    TilingSpec,
    check_mask,
    repair_mask,
    retarget,
)
from ..lint import gate_postflight, postflight_mask, preflight_tapeout
from ..verify import ORCReport, ProcessCorner, run_orc
from ..verify.mrc import MRCReport as MaskMRCReport
from .correct import CorrectionLevel, FlowResult, correct_region


@dataclass(frozen=True)
class TapeoutRecipe:
    """Knobs of the standard pipeline (all optional stages on by default).

    Validation is eager: a recipe that cannot run raises
    :class:`~repro.errors.ReproError` at construction, naming the bad
    field, instead of failing deep inside a stage minutes later.
    """

    level: CorrectionLevel = CorrectionLevel.MODEL
    smooth_tolerance_nm: int = 4
    mrc: MRCRules = MRCRules(min_width_nm=40, min_space_nm=40)
    retarget_rules: Optional[RetargetRules] = None  # None = skip retargeting
    dark_field: bool = False
    orc_margin_nm: int = 50
    model_recipe: ModelOPCRecipe = ModelOPCRecipe()
    tiling: TilingSpec = TilingSpec()
    #: Fan correction tiles out over a worker pool (None = serial).
    parallel: Optional[ParallelSpec] = None

    def __post_init__(self):
        self.validated()

    def validated(self) -> "TapeoutRecipe":
        """Return self, raising :class:`ReproError` on nonsense values."""
        if not isinstance(self.level, CorrectionLevel):
            raise ReproError(
                f"level must be a CorrectionLevel, got {self.level!r}"
            )
        if self.smooth_tolerance_nm < 0:
            raise ReproError(
                f"smooth_tolerance_nm must be >= 0 (0 disables smoothing), "
                f"got {self.smooth_tolerance_nm}"
            )
        if self.orc_margin_nm < 0:
            raise ReproError(
                f"orc_margin_nm must be >= 0, got {self.orc_margin_nm}"
            )
        # Sub-specs carry their own validators; run them here so the
        # recipe as a whole is known-runnable the moment it exists.
        self.mrc.validated()
        self.model_recipe.validated()
        self.tiling.validated()
        if self.retarget_rules is not None:
            self.retarget_rules.validated()
        # ParallelSpec already validates eagerly in its own constructor.
        return self


@dataclass
class TapeoutResult:
    """Outcome of :func:`tapeout_region`."""

    recipe: TapeoutRecipe
    target: Region
    mask_geometry: Region
    correction: FlowResult
    data: MaskDataStats
    mrc_clean: bool
    orc: Optional[ORCReport]
    #: Localized postflight MRC findings on the final mask (None when
    #: the postflight gate was skipped).
    mrc_report: Optional[MaskMRCReport] = None

    @property
    def signoff_ok(self) -> bool:
        """Writable mask and no catastrophic printability failures."""
        return self.mrc_clean and (self.orc is None or self.orc.is_clean)


def tapeout_region(
    drawn: Region,
    simulator: LithoSimulator,
    dose: float,
    recipe: TapeoutRecipe = TapeoutRecipe(),
    window: Optional[Rect] = None,
    verify: bool = True,
    source_cell: Optional[Cell] = None,
    preflight: bool = True,
    postflight: bool = True,
) -> TapeoutResult:
    """Run the full mask-synthesis pipeline on one layer's drawn geometry.

    ``source_cell`` is the layout hierarchy the drawn geometry came from,
    when there is one; auto-recorded runs use it to attribute worst EPE
    sites to their owning cells (see :mod:`repro.obs.spatial`).

    ``preflight`` statically lints the job (layout + recipe + litho
    config, see :mod:`repro.lint`) before the first simulator call and
    raises :class:`~repro.errors.PreflightError` on blocking findings;
    pass ``False`` to skip the gate.  ``postflight`` symmetrically runs
    the localized MRC engine over the repaired mask (after SRAF merge)
    and raises :class:`~repro.errors.PostflightError` on blocking
    defects; the repair stage makes this a convergence assertion rather
    than a routine failure.
    """
    merged = drawn.merged()
    if merged.is_empty:
        raise ReproError("nothing to tape out")
    if window is None:
        window = merged.bbox().expanded(200)

    # The event scope brackets the pipeline with run.start/run.end on the
    # live bus and -- for runs headed to the ledger -- captures the full
    # stream so record_run can persist it for `repro watch --replay`.
    with _obs_events.run_scope("tapeout") as run_events, _obs_span(
        "tapeout", level=recipe.level.value, dark_field=recipe.dark_field
    ) as tapeout_span:
        preflight_summary = None
        with _obs_span(
            "tapeout.preflight", skipped=not preflight
        ) as preflight_span:
            if preflight:
                report = preflight_tapeout(
                    merged,
                    recipe,
                    litho=simulator.config,
                    cell=source_cell,
                )
                preflight_summary = report.summary_dict()
                preflight_span.set(
                    errors=report.error_count,
                    warnings=report.warning_count,
                    info=report.info_count,
                )

        with _obs_span(
            "tapeout.retarget", skipped=recipe.retarget_rules is None
        ):
            target = merged
            if recipe.retarget_rules is not None:
                target = retarget(merged, recipe.retarget_rules)

        with _obs_span("tapeout.correct"):
            correction = correct_region(
                target,
                recipe.level,
                simulator=simulator,
                window=window,
                dose=dose,
                dark_field=recipe.dark_field,
                model_recipe=recipe.model_recipe,
                tiling=recipe.tiling,
                parallel=recipe.parallel,
                preflight=False,  # the tapeout-level gate already ran
                mrc=recipe.mrc,
                # Raw OPC output gets repaired below; gating it here
                # would reject masks the repair stage is about to fix.
                postflight=False,
            )

        with _obs_span(
            "tapeout.smooth", skipped=recipe.smooth_tolerance_nm <= 0
        ) as smooth_span:
            mask_geometry = correction.corrected
            if recipe.smooth_tolerance_nm > 0:
                before = mask_geometry.num_vertices
                mask_geometry = smooth_jogs(
                    mask_geometry, recipe.smooth_tolerance_nm
                )
                smooth_span.set(
                    vertices_before=before,
                    vertices_after=mask_geometry.num_vertices,
                )

        with _obs_span("tapeout.mrc") as mrc_span:
            mask_geometry = repair_mask(mask_geometry, recipe.mrc)
            mrc_clean = check_mask(mask_geometry, recipe.mrc).is_clean
            mrc_span.set(clean=mrc_clean)
        combined = (
            mask_geometry | correction.srafs
            if not correction.srafs.is_empty
            else mask_geometry
        )

        # Postflight: the shipped mask (repaired features plus SRAFs)
        # re-verified by the localized edge engine.  After repair this
        # should be a no-op; a raise here means the repair failed to
        # converge and the mask must not leave the process.
        mrc_report: Optional[MaskMRCReport] = None
        with _obs_span(
            "tapeout.postflight", skipped=not postflight
        ) as postflight_span:
            if postflight:
                post = postflight_mask(
                    combined, recipe.mrc, cell=source_cell
                )
                mrc_report = post.mrc
                postflight_span.set(
                    errors=post.report.error_count,
                    warnings=post.report.warning_count,
                    violations=len(post.mrc.violations),
                    shots=post.mrc.shot_count,
                )
                gate_postflight(post, stage="tapeout")

        orc_report: Optional[ORCReport] = None
        with _obs_span("tapeout.orc", skipped=not verify) as orc_span:
            if verify:
                orc_report = run_orc(
                    simulator,
                    binary_mask(
                        mask_geometry,
                        dark_field=recipe.dark_field,
                        srafs=correction.srafs
                        if not correction.srafs.is_empty
                        else None,
                    ),
                    target,
                    window,
                    ProcessCorner(dose=dose),
                    critical_margin_nm=recipe.orc_margin_nm,
                )
                orc_span.set(clean=orc_report.is_clean)

        data = mask_data_stats(combined)
        tapeout_span.set(
            figures=data.figures,
            vertices=data.vertices,
            mrc_clean=mrc_clean,
        )

    result = TapeoutResult(
        recipe=recipe,
        target=target,
        mask_geometry=mask_geometry,
        correction=correction,
        data=data,
        mrc_clean=mrc_clean,
        orc=orc_report,
        mrc_report=mrc_report,
    )
    # Root instrumented tapeouts append themselves to the persistent run
    # ledger when $REPRO_RUNS_DIR is set (see repro.obs.runs).
    if (
        tapeout_span.recorded
        and _obs_current_span() is None
        and _obs_runs.auto_enabled()
    ):
        spatial = tapeout_spatial(
            result, [tapeout_span], window, source_cell=source_cell
        )
        quality = tapeout_quality(result)
        if spatial is not None:
            quality.update(_obs_spatial.spatial_quality(spatial))
        _obs_publish_quality(quality)
        _obs_runs.record_run(
            label="tapeout",
            config={
                "kind": "tapeout",
                "recipe": recipe,
                "dose": dose,
                "verify": verify,
                "window": window,
                "litho": simulator.config,
            },
            roots=[tapeout_span],
            quality=quality,
            spatial=spatial,
            preflight=preflight_summary,
            profile=_obs_prof.active_summary(),
            events=run_events,
            mrc=mrc_report.summary_dict() if mrc_report is not None else None,
        )
    return result


def tapeout_spatial(
    result: TapeoutResult,
    roots,
    window: Optional[Rect] = None,
    source_cell: Optional[Cell] = None,
    top_k: int = 10,
) -> Optional[dict]:
    """The spatial hotspot payload of one tape-out run.

    Combines the ORC site records (when verification ran) with the tile
    convergence curves mined from ``roots`` (trace spans or span dicts).
    Returns ``None`` when the run produced neither -- records stay lean
    for unverified, untiled runs.
    """
    sites = list(result.orc.sites) if result.orc is not None else []
    if sites and source_cell is not None:
        sites = _obs_spatial.attribute_sites(sites, source_cell)
    payload = _obs_spatial.spatial_summary(
        roots, sites, window=window, top_k=top_k
    )
    markers = (
        result.mrc_report.violations if result.mrc_report is not None else []
    )
    if not sites and not payload["tiles"] and not markers:
        return None
    if markers:
        # MRC markers join the hotspot payload (additive key; older
        # records simply lack it) so `repro inspect` can overlay them.
        payload["mrc"] = [v.to_dict() for v in markers[:50]]
    return payload


def tapeout_quality(result: TapeoutResult) -> dict:
    """First-class quality metrics of one tape-out run.

    Extends :func:`~repro.flow.correct.flow_quality` with the sign-off
    verdicts: MRC cleanliness and -- when ORC ran -- residual EPE
    statistics and catastrophic pinch/bridge counts.
    """
    from .correct import flow_quality

    quality = flow_quality(
        result.data, result.correction.opc, result.mrc_report
    )
    quality["mrc_clean"] = int(result.mrc_clean)
    if result.orc is not None:
        quality["orc_clean"] = int(result.orc.is_clean)
        quality["pinch_count"] = result.orc.pinch_count
        quality["bridge_count"] = result.orc.bridge_count
        quality["orc_epe_rms_nm"] = result.orc.epe.rms_nm
        quality["orc_epe_max_nm"] = result.orc.epe.max_abs_nm
        quality["orc_epe_p95_nm"] = result.orc.epe.p95_abs_nm
    return quality


def tapeout_cell_layer(
    cell: Cell,
    layer: Layer,
    simulator: LithoSimulator,
    dose: float,
    recipe: TapeoutRecipe = TapeoutRecipe(),
    verify: bool = True,
) -> TapeoutResult:
    """Flatten ``cell``'s ``layer`` and run :func:`tapeout_region`."""
    drawn = cell.flat_region(layer)
    if drawn.is_empty:
        raise ReproError(f"cell {cell.name!r} has nothing on {layer}")
    return tapeout_region(
        drawn, simulator, dose, recipe, verify=verify, source_cell=cell
    )
