"""Hierarchical layout database with GDSII I/O.

Public surface:

* :class:`Layer` plus the synthetic process layer stack (``POLY``,
  ``METAL1``, ...), and RET output layer helpers;
* :class:`Cell`, :class:`CellRef`, :class:`CellArray`, :class:`Library`;
* :func:`layout_stats` for hierarchical-vs-flat size accounting;
* :func:`write_gds` / :func:`read_gds` for binary GDSII streams.
"""

from .cell import Cell, Label
from .gds import GDSReader, GDSWriter, read_gds, write_gds
from .layer import (
    ACTIVE,
    BOUNDARY,
    CONTACT,
    DRAWN_LAYERS,
    METAL1,
    METAL2,
    NIMPLANT,
    NWELL,
    PIMPLANT,
    POLY,
    VIA1,
    Layer,
    opc_layer,
    phase_layer,
    sraf_layer,
)
from .library import Library
from .reference import CellArray, CellRef, Reference
from .stats import LayerStats, LayoutStats, layout_stats, region_stats

__all__ = [
    "ACTIVE",
    "BOUNDARY",
    "CONTACT",
    "Cell",
    "CellArray",
    "CellRef",
    "DRAWN_LAYERS",
    "GDSReader",
    "GDSWriter",
    "Label",
    "Layer",
    "LayerStats",
    "LayoutStats",
    "Library",
    "METAL1",
    "METAL2",
    "NIMPLANT",
    "NWELL",
    "PIMPLANT",
    "POLY",
    "Reference",
    "VIA1",
    "layout_stats",
    "opc_layer",
    "phase_layer",
    "read_gds",
    "region_stats",
    "sraf_layer",
    "write_gds",
]
