"""Layout cells: per-layer geometry, text labels, and child references.

A :class:`Cell` stores raw loops per layer (merging is deferred -- layout
construction should be cheap), text labels (pin/net names), and a list of
child references.  Geometry can be added as
:class:`~repro.geometry.rect.Rect`, Polygon, Region or bare vertex loops.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional

from ..errors import LayoutError
from ..geometry import Coord, Rect, Region, Transform
from ..geometry.rect import bounding_box
from .layer import Layer
from .reference import CellArray, CellRef, Reference


class Label(NamedTuple):
    """A text annotation pinned to a layout location (a pin/net name)."""

    layer: Layer
    text: str
    position: Coord


class Cell:
    """A named layout cell with per-layer shapes and child references."""

    def __init__(self, name: str):
        if not name:
            raise LayoutError("cell name must be non-empty")
        self.name = name
        self._shapes: Dict[Layer, Region] = {}
        self.references: List[Reference] = []
        self.labels: List[Label] = []

    def __repr__(self) -> str:
        return (
            f"Cell({self.name!r}, layers={len(self._shapes)}, "
            f"refs={len(self.references)})"
        )

    # -- geometry ---------------------------------------------------------------

    def add(self, layer: Layer, shape) -> "Cell":
        """Add a shape (Rect, Polygon, Region or vertex loop) on ``layer``."""
        region = self._shapes.setdefault(layer, Region())
        region._add(shape)
        return self

    def add_many(self, layer: Layer, shapes: Iterable) -> "Cell":
        """Add several shapes on ``layer``."""
        for shape in shapes:
            self.add(layer, shape)
        return self

    def set_region(self, layer: Layer, region: Region) -> "Cell":
        """Replace the geometry of ``layer`` wholesale."""
        self._shapes[layer] = Region(region)
        return self

    def region(self, layer: Layer) -> Region:
        """The raw region on ``layer`` (empty region when absent)."""
        return self._shapes.get(layer, Region())

    def add_label(self, layer: Layer, text: str, position: Coord) -> "Cell":
        """Attach a text label (pin/net name) at ``position`` on ``layer``."""
        if not text:
            raise LayoutError("label text must be non-empty")
        self.labels.append(Label(layer, text, (int(position[0]), int(position[1]))))
        return self

    def flat_labels(self, transform: Transform = Transform()) -> List[Label]:
        """All labels, hierarchy expanded into this cell's frame."""
        result = [
            Label(lbl.layer, lbl.text, transform.apply(lbl.position))
            for lbl in self.labels
        ]
        for ref in self.references:
            for place in ref.placements():
                result.extend(ref.cell.flat_labels(place.then(transform)))
        return result

    @property
    def layers(self) -> List[Layer]:
        """Layers with any geometry, in insertion order."""
        return [layer for layer, region in self._shapes.items() if region.num_loops]

    # -- hierarchy --------------------------------------------------------------

    def place(self, cell: "Cell", transform: Transform = Transform()) -> CellRef:
        """Place ``cell`` once under ``transform``; returns the reference."""
        ref = CellRef(cell, transform.validated())
        self.references.append(ref)
        return ref

    def place_at(self, cell: "Cell", x: int, y: int, rotation: int = 0,
                 mirror_x: bool = False) -> CellRef:
        """Convenience placement by position and orientation."""
        return self.place(cell, Transform(dx=x, dy=y, rotation=rotation,
                                          mirror_x=mirror_x))

    def place_array(
        self,
        cell: "Cell",
        cols: int,
        rows: int,
        col_pitch: int,
        row_pitch: int,
        transform: Transform = Transform(),
    ) -> CellArray:
        """Place a rectangular array of ``cell``; returns the reference."""
        ref = CellArray(cell, cols, rows, col_pitch, row_pitch, transform.validated())
        self.references.append(ref)
        return ref

    def child_cells(self) -> List["Cell"]:
        """Distinct directly-referenced child cells."""
        seen: Dict[str, Cell] = {}
        for ref in self.references:
            seen.setdefault(ref.cell.name, ref.cell)
        return list(seen.values())

    # -- queries ---------------------------------------------------------------

    def bbox(self, recursive: bool = True) -> Optional[Rect]:
        """Bounding box of own shapes, optionally including children."""
        boxes = [r.bbox() for r in self._shapes.values()]
        boxes = [b for b in boxes if b is not None]
        if recursive:
            for ref in self.references:
                child_box = ref.cell.bbox(recursive=True)
                if child_box is None:
                    continue
                for trans in ref.placements():
                    boxes.append(trans.apply_rect(child_box))
        return bounding_box(boxes)

    def flat_region(self, layer: Layer, transform: Transform = Transform()) -> Region:
        """All geometry on ``layer``, hierarchy expanded, as one raw region.

        ``transform`` maps the result into an enclosing frame; callers
        normally omit it.
        """
        result = Region()
        own = self._shapes.get(layer)
        if own is not None and own.num_loops:
            result._add(own if transform.is_identity else own.transformed(transform))
        for ref in self.references:
            for place in ref.placements():
                result._add(ref.cell.flat_region(layer, place.then(transform)))
        return result

    def flattened(self, name: Optional[str] = None) -> "Cell":
        """A new reference-free cell with all hierarchy expanded."""
        flat = Cell(name or f"{self.name}_flat")
        for layer in self._collect_layers():
            region = self.flat_region(layer)
            if region.num_loops:
                flat.set_region(layer, region)
        return flat

    def _collect_layers(self) -> List[Layer]:
        layers: Dict[Layer, None] = {}
        stack = [self]
        visited = set()
        while stack:
            cell = stack.pop()
            if id(cell) in visited:
                continue
            visited.add(id(cell))
            for layer in cell.layers:
                layers.setdefault(layer)
            stack.extend(cell.child_cells())
        return list(layers)
