"""Layout statistics: figure/vertex counts, hierarchical vs flattened.

The DAC-2001 data-volume argument is quantitative: OPC multiplies figure
and vertex counts, and context-dependent correction destroys hierarchy so
the *flattened* counts are what the mask writer sees.  These helpers count
both views without materialising a flat layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..geometry import Region
from .cell import Cell
from .layer import Layer


@dataclass(frozen=True)
class LayerStats:
    """Figure and vertex counts on one layer."""

    figures: int = 0
    vertices: int = 0

    def __add__(self, other: "LayerStats") -> "LayerStats":
        return LayerStats(self.figures + other.figures, self.vertices + other.vertices)

    def scaled(self, factor: int) -> "LayerStats":
        """Counts multiplied by an instance repetition factor."""
        return LayerStats(self.figures * factor, self.vertices * factor)


@dataclass
class LayoutStats:
    """Hierarchy-level and flat-level size of a layout tree."""

    cells: int = 0
    placements: int = 0
    hierarchical: Dict[Layer, LayerStats] = field(default_factory=dict)
    flat: Dict[Layer, LayerStats] = field(default_factory=dict)

    @property
    def hierarchical_figures(self) -> int:
        """Figures summed over distinct cell definitions."""
        return sum(s.figures for s in self.hierarchical.values())

    @property
    def hierarchical_vertices(self) -> int:
        """Vertices summed over distinct cell definitions."""
        return sum(s.vertices for s in self.hierarchical.values())

    @property
    def flat_figures(self) -> int:
        """Figures after full hierarchy expansion."""
        return sum(s.figures for s in self.flat.values())

    @property
    def flat_vertices(self) -> int:
        """Vertices after full hierarchy expansion."""
        return sum(s.vertices for s in self.flat.values())

    @property
    def hierarchy_compression(self) -> float:
        """How many times smaller the hierarchical description is."""
        if self.hierarchical_figures == 0:
            return 1.0
        return self.flat_figures / self.hierarchical_figures


def region_stats(region: Region) -> LayerStats:
    """Figure/vertex counts of one region (loops counted as figures)."""
    return LayerStats(figures=region.num_loops, vertices=region.num_vertices)


def layout_stats(top: Cell, layer: Optional[Layer] = None) -> LayoutStats:
    """Statistics of the tree rooted at ``top``.

    ``layer`` restricts counting to one layer; by default all layers are
    counted.  Hierarchical counts sum each distinct cell definition once;
    flat counts weigh each definition by its total expanded placement count.
    """
    cell_layer_stats: Dict[str, Dict[Layer, LayerStats]] = {}
    flat_cache: Dict[str, Dict[Layer, LayerStats]] = {}
    placements = 0
    order: list[Cell] = []
    seen: set[str] = set()

    def collect(cell: Cell) -> None:
        if cell.name in seen:
            return
        seen.add(cell.name)
        for ref in cell.references:
            collect(ref.cell)
        order.append(cell)

    collect(top)

    for cell in order:
        own: Dict[Layer, LayerStats] = {}
        for lyr in cell.layers:
            if layer is not None and lyr != layer:
                continue
            own[lyr] = region_stats(cell.region(lyr))
        cell_layer_stats[cell.name] = own
        flat: Dict[Layer, LayerStats] = dict(own)
        for ref in cell.references:
            child_flat = flat_cache[ref.cell.name]
            for lyr, stats in child_flat.items():
                flat[lyr] = flat.get(lyr, LayerStats()) + stats.scaled(ref.count)
        flat_cache[cell.name] = flat

    def count_placements(cell: Cell, multiplier: int) -> int:
        total = 0
        for ref in cell.references:
            expanded = ref.count * multiplier
            total += expanded + count_placements(ref.cell, expanded)
        return total

    placements = count_placements(top, 1)

    hierarchical: Dict[Layer, LayerStats] = {}
    for own in cell_layer_stats.values():
        for lyr, stats in own.items():
            hierarchical[lyr] = hierarchical.get(lyr, LayerStats()) + stats

    return LayoutStats(
        cells=len(order),
        placements=placements,
        hierarchical=hierarchical,
        flat=dict(flat_cache[top.name]),
    )
