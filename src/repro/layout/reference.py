"""Cell references: single placements and arrays.

A :class:`CellRef` places a child cell under an exact
:class:`~repro.geometry.transform.Transform`.  A :class:`CellArray` is the
GDSII AREF equivalent: a transformed placement repeated on a rectangular
grid in parent coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..errors import LayoutError
from ..geometry import Transform

if TYPE_CHECKING:  # pragma: no cover
    from .cell import Cell


@dataclass(frozen=True)
class CellRef:
    """A single placement of ``cell`` under ``transform``."""

    cell: "Cell"
    transform: Transform = field(default_factory=Transform.identity)

    @property
    def count(self) -> int:
        """Number of placements this reference expands to (always 1)."""
        return 1

    def placements(self) -> Iterator[Transform]:
        """Yield the transform of every expanded placement."""
        yield self.transform

    def __repr__(self) -> str:
        return f"CellRef({self.cell.name!r}, {self.transform})"


@dataclass(frozen=True)
class CellArray:
    """A rectangular array of placements of ``cell``.

    The base placement is ``transform``; instance ``(col, row)`` adds a
    parent-frame translation of ``(col * col_pitch, row * row_pitch)``.
    """

    cell: "Cell"
    cols: int
    rows: int
    col_pitch: int
    row_pitch: int
    transform: Transform = field(default_factory=Transform.identity)

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise LayoutError(
                f"array must have positive dimensions, got {self.cols}x{self.rows}"
            )

    @property
    def count(self) -> int:
        """Number of placements this reference expands to."""
        return self.cols * self.rows

    def placements(self) -> Iterator[Transform]:
        """Yield the transform of every expanded placement."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield self.transform._replace(
                    dx=self.transform.dx + col * self.col_pitch,
                    dy=self.transform.dy + row * self.row_pitch,
                )

    def __repr__(self) -> str:
        return (
            f"CellArray({self.cell.name!r}, {self.cols}x{self.rows}, "
            f"pitch=({self.col_pitch},{self.row_pitch}))"
        )


Reference = CellRef | CellArray
