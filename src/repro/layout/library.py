"""Layout libraries: named collections of cells with hierarchy utilities."""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..errors import LayoutError
from .cell import Cell


class Library:
    """A named collection of cells forming one or more hierarchies."""

    def __init__(self, name: str = "repro"):
        if not name:
            raise LayoutError("library name must be non-empty")
        self.name = name
        self._cells: Dict[str, Cell] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise LayoutError(f"no cell named {name!r} in library {self.name!r}") from None

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def add(self, cell: Cell) -> Cell:
        """Register ``cell``; duplicate names are an error."""
        if cell.name in self._cells:
            raise LayoutError(f"duplicate cell name {cell.name!r}")
        self._cells[cell.name] = cell
        return cell

    def new_cell(self, name: str) -> Cell:
        """Create, register and return a fresh cell."""
        return self.add(Cell(name))

    def add_tree(self, top: Cell) -> Cell:
        """Register ``top`` and every cell reachable from it (idempotent).

        Cells already present must be the *same object*; a different cell
        under an existing name is an error.
        """
        for cell in _descend(top):
            existing = self._cells.get(cell.name)
            if existing is None:
                self._cells[cell.name] = cell
            elif existing is not cell:
                raise LayoutError(f"conflicting cell object for name {cell.name!r}")
        return top

    @property
    def cells(self) -> List[Cell]:
        """All cells in registration order."""
        return list(self._cells.values())

    def top_cells(self) -> List[Cell]:
        """Cells not referenced by any other cell in the library."""
        referenced: Set[str] = set()
        for cell in self._cells.values():
            for ref in cell.references:
                referenced.add(ref.cell.name)
        return [c for c in self._cells.values() if c.name not in referenced]

    def top_cell(self) -> Cell:
        """The unique top cell; an error when there is not exactly one."""
        tops = self.top_cells()
        if len(tops) != 1:
            raise LayoutError(
                f"library {self.name!r} has {len(tops)} top cells, expected 1"
            )
        return tops[0]

    def check_acyclic(self) -> None:
        """Raise :class:`LayoutError` when the reference graph has a cycle."""
        WHITE, GRAY, BLACK = 0, 1, 2
        state: Dict[str, int] = {name: WHITE for name in self._cells}

        def visit(cell: Cell, trail: List[str]) -> None:
            state[cell.name] = GRAY
            for ref in cell.references:
                child = ref.cell
                mark = state.get(child.name, WHITE)
                if mark == GRAY:
                    cycle = " -> ".join(trail + [cell.name, child.name])
                    raise LayoutError(f"cyclic hierarchy: {cycle}")
                if mark == WHITE:
                    visit(child, trail + [cell.name])
            state[cell.name] = BLACK

        for cell in self._cells.values():
            if state[cell.name] == WHITE:
                visit(cell, [])


def _descend(top: Cell) -> Iterator[Cell]:
    """Yield ``top`` and every reachable cell once (depth-first)."""
    seen: Set[int] = set()
    stack = [top]
    while stack:
        cell = stack.pop()
        if id(cell) in seen:
            continue
        seen.add(id(cell))
        yield cell
        stack.extend(cell.child_cells())
