"""Binary GDSII stream reader and writer.

Implements the subset of GDSII used by Manhattan mask layouts: BOUNDARY
elements, SREF/AREF hierarchy with 90-degree orientations, and library
metadata.  Timestamps are written as fixed values so output is
byte-for-byte deterministic.

The mask data-volume experiments measure real on-disk bytes, so the writer
is a faithful stream-format implementation, not a toy: 8-byte excess-64
reals, even-length padded strings, record framing, and AREF lattices all
follow the Calma specification.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import GDSError
from ..geometry import Transform
from .cell import Cell
from .layer import Layer
from .library import Library
from .reference import CellArray, CellRef

# Record types (record_type byte, data_type byte).
_HEADER = (0x00, 0x02)
_BGNLIB = (0x01, 0x02)
_LIBNAME = (0x02, 0x06)
_UNITS = (0x03, 0x05)
_ENDLIB = (0x04, 0x00)
_BGNSTR = (0x05, 0x02)
_STRNAME = (0x06, 0x06)
_ENDSTR = (0x07, 0x00)
_BOUNDARY = (0x08, 0x00)
_SREF = (0x0A, 0x00)
_AREF = (0x0B, 0x00)
_PATH = (0x09, 0x00)
_TEXT = (0x0C, 0x00)
_WIDTH = (0x0F, 0x03)
_TEXTTYPE = (0x16, 0x02)
_PATHTYPE = (0x21, 0x02)
_STRING = (0x19, 0x06)
_LAYER = (0x0D, 0x02)
_DATATYPE = (0x0E, 0x02)
_XY = (0x10, 0x03)
_ENDEL = (0x11, 0x00)
_SNAME = (0x12, 0x06)
_COLROW = (0x13, 0x02)
_STRANS = (0x1A, 0x01)
_MAG = (0x1B, 0x05)
_ANGLE = (0x1C, 0x05)

#: Deterministic timestamp written into BGNLIB/BGNSTR (Y, M, D, H, M, S x2).
_FIXED_TIMESTAMP = (2001, 6, 18, 0, 0, 0, 2001, 6, 18, 0, 0, 0)

_REFLECTION_FLAG = 0x8000


# -- 8-byte excess-64 real conversion ------------------------------------------------


def pack_real8(value: float) -> bytes:
    """Encode a float as a GDSII 8-byte excess-64 real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(round(value * float(1 << 56)))
    if mantissa >= 1 << 56:  # rounding carried past the top bit
        mantissa >>= 4
        exponent += 1
    if not 0 <= exponent <= 127:
        raise GDSError(f"real value out of GDSII range (exponent {exponent})")
    return bytes([sign | exponent]) + mantissa.to_bytes(7, "big")


def unpack_real8(data: bytes) -> float:
    """Decode a GDSII 8-byte excess-64 real."""
    if len(data) != 8:
        raise GDSError(f"8-byte real expected, got {len(data)} bytes")
    sign = -1.0 if data[0] & 0x80 else 1.0
    exponent = (data[0] & 0x7F) - 64
    mantissa = int.from_bytes(data[1:], "big") / float(1 << 56)
    return sign * mantissa * (16.0**exponent)


# -- record framing -------------------------------------------------------------


def _record(kind: Tuple[int, int], payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    if length > 0xFFFF:
        raise GDSError(f"record too long ({length} bytes)")
    return struct.pack(">HBB", length, kind[0], kind[1]) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\x00"
    return data


def _int16(*values: int) -> bytes:
    return struct.pack(f">{len(values)}h", *values)


def _int32(*values: int) -> bytes:
    return struct.pack(f">{len(values)}i", *values)


# -- writer ---------------------------------------------------------------------


class GDSWriter:
    """Serialises a :class:`Library` to a GDSII stream."""

    def __init__(self, dbu_in_meters: float = 1e-9, dbu_in_user_units: float = 1e-3):
        self.dbu_in_meters = dbu_in_meters
        self.dbu_in_user_units = dbu_in_user_units

    def write(self, library: Library, target: Union[str, Path, BinaryIO]) -> int:
        """Write ``library``; returns the number of bytes written."""
        library.check_acyclic()
        if isinstance(target, (str, Path)):
            with open(target, "wb") as stream:
                return self._write_stream(library, stream)
        return self._write_stream(library, target)

    def to_bytes(self, library: Library) -> bytes:
        """Serialise ``library`` to an in-memory byte string."""
        import io

        buffer = io.BytesIO()
        self.write(library, buffer)
        return buffer.getvalue()

    def _write_stream(self, library: Library, stream: BinaryIO) -> int:
        written = 0

        def emit(data: bytes) -> None:
            nonlocal written
            stream.write(data)
            written += len(data)

        emit(_record(_HEADER, _int16(600)))
        emit(_record(_BGNLIB, _int16(*_FIXED_TIMESTAMP)))
        emit(_record(_LIBNAME, _ascii(library.name)))
        emit(
            _record(
                _UNITS,
                pack_real8(self.dbu_in_user_units) + pack_real8(self.dbu_in_meters),
            )
        )
        for cell in _children_first(library):
            self._write_cell(cell, emit)
        emit(_record(_ENDLIB))
        return written

    def _write_cell(self, cell: Cell, emit) -> None:
        emit(_record(_BGNSTR, _int16(*_FIXED_TIMESTAMP)))
        emit(_record(_STRNAME, _ascii(cell.name)))
        for layer in cell.layers:
            for loop in cell.region(layer).loops:
                self._write_boundary(layer, loop, emit)
        for label in cell.labels:
            emit(_record(_TEXT))
            emit(_record(_LAYER, _int16(label.layer.gds_layer)))
            emit(_record(_TEXTTYPE, _int16(label.layer.datatype)))
            emit(_record(_XY, _int32(label.position[0], label.position[1])))
            emit(_record(_STRING, _ascii(label.text)))
            emit(_record(_ENDEL))
        for ref in cell.references:
            if isinstance(ref, CellArray):
                self._write_aref(ref, emit)
            else:
                self._write_sref(ref, emit)
        emit(_record(_ENDSTR))

    def _write_boundary(self, layer: Layer, loop, emit) -> None:
        emit(_record(_BOUNDARY))
        emit(_record(_LAYER, _int16(layer.gds_layer)))
        emit(_record(_DATATYPE, _int16(layer.datatype)))
        coords: List[int] = []
        for x, y in loop:
            coords.extend((x, y))
        coords.extend(loop[0])  # GDSII repeats the first vertex
        emit(_record(_XY, _int32(*coords)))
        emit(_record(_ENDEL))

    def _write_strans(self, transform: Transform, emit) -> None:
        if transform.mirror_x or transform.rotation % 4 or transform.magnification != 1:
            flags = _REFLECTION_FLAG if transform.mirror_x else 0
            emit(_record(_STRANS, struct.pack(">H", flags)))
            if transform.magnification != 1:
                emit(_record(_MAG, pack_real8(float(transform.magnification))))
            if transform.rotation % 4:
                emit(_record(_ANGLE, pack_real8(90.0 * (transform.rotation % 4))))

    def _write_sref(self, ref: CellRef, emit) -> None:
        emit(_record(_SREF))
        emit(_record(_SNAME, _ascii(ref.cell.name)))
        self._write_strans(ref.transform, emit)
        emit(_record(_XY, _int32(ref.transform.dx, ref.transform.dy)))
        emit(_record(_ENDEL))

    def _write_aref(self, ref: CellArray, emit) -> None:
        emit(_record(_AREF))
        emit(_record(_SNAME, _ascii(ref.cell.name)))
        self._write_strans(ref.transform, emit)
        emit(_record(_COLROW, _int16(ref.cols, ref.rows)))
        ox, oy = ref.transform.dx, ref.transform.dy
        emit(
            _record(
                _XY,
                _int32(
                    ox,
                    oy,
                    ox + ref.cols * ref.col_pitch,
                    oy,
                    ox,
                    oy + ref.rows * ref.row_pitch,
                ),
            )
        )
        emit(_record(_ENDEL))


# -- reader ----------------------------------------------------------------------


class GDSReader:
    """Parses a GDSII stream back into a :class:`Library`."""

    def read(self, source: Union[str, Path, bytes, BinaryIO]) -> Library:
        """Parse ``source`` and return the reconstructed library."""
        if isinstance(source, (str, Path)):
            with open(source, "rb") as stream:
                data = stream.read()
        elif isinstance(source, bytes):
            data = source
        else:
            data = source.read()
        return self._parse(data)

    def _parse(self, data: bytes) -> Library:
        records = list(_iter_records(data))
        cursor = 0

        def expect(kind: Tuple[int, int]) -> bytes:
            nonlocal cursor
            if cursor >= len(records):
                raise GDSError("unexpected end of stream")
            rec_kind, payload = records[cursor]
            if rec_kind != kind:
                raise GDSError(f"expected record {kind}, got {rec_kind}")
            cursor += 1
            return payload

        def peek() -> Optional[Tuple[int, int]]:
            return records[cursor][0] if cursor < len(records) else None

        expect(_HEADER)
        expect(_BGNLIB)
        library_name = _read_ascii(expect(_LIBNAME))
        expect(_UNITS)
        library = Library(library_name)
        pending_refs: List[Tuple[Cell, str, Transform, Optional[Tuple[int, int, int, int]]]] = []

        while peek() == _BGNSTR:
            cursor += 1
            cell = Cell(_read_ascii(expect(_STRNAME)))
            while peek() != _ENDSTR:
                kind = peek()
                if kind == _BOUNDARY:
                    cursor += 1
                    layer_num = struct.unpack(">h", expect(_LAYER))[0]
                    datatype = struct.unpack(">h", expect(_DATATYPE))[0]
                    xy = expect(_XY)
                    expect(_ENDEL)
                    coords = struct.unpack(f">{len(xy) // 4}i", xy)
                    pts = list(zip(coords[0::2], coords[1::2]))
                    cell.add(Layer(layer_num, datatype), pts)
                elif kind == _PATH:
                    cursor += 1
                    layer_num = struct.unpack(">h", expect(_LAYER))[0]
                    datatype = struct.unpack(">h", expect(_DATATYPE))[0]
                    pathtype = 0
                    if peek() == _PATHTYPE:
                        pathtype = struct.unpack(">h", expect(_PATHTYPE))[0]
                    width = 0
                    if peek() == _WIDTH:
                        width = struct.unpack(">i", expect(_WIDTH))[0]
                    xy = expect(_XY)
                    expect(_ENDEL)
                    coords = struct.unpack(f">{len(xy) // 4}i", xy)
                    pts = list(zip(coords[0::2], coords[1::2]))
                    region = _path_to_region(pts, width, pathtype)
                    cell.add(Layer(layer_num, datatype), region)
                elif kind == _TEXT:
                    cursor += 1
                    layer_num = struct.unpack(">h", expect(_LAYER))[0]
                    texttype = struct.unpack(">h", expect(_TEXTTYPE))[0]
                    xy = struct.unpack(">2i", expect(_XY))
                    text = _read_ascii(expect(_STRING))
                    expect(_ENDEL)
                    cell.add_label(Layer(layer_num, texttype), text, xy)
                elif kind in (_SREF, _AREF):
                    is_aref = kind == _AREF
                    cursor += 1
                    sname = _read_ascii(expect(_SNAME))
                    transform, colrow, origin = self._read_placement(
                        records, is_aref, expect, peek
                    )
                    pending_refs.append((cell, sname, transform, colrow))
                else:
                    raise GDSError(f"unsupported element record {kind}")
            cursor += 1  # ENDSTR
            library.add(cell)

        expect(_ENDLIB)

        for parent, child_name, transform, colrow in pending_refs:
            child = library[child_name]
            if colrow is None:
                parent.references.append(CellRef(child, transform))
            else:
                cols, rows, col_pitch, row_pitch = colrow
                parent.references.append(
                    CellArray(child, cols, rows, col_pitch, row_pitch, transform)
                )
        return library

    def _read_placement(self, records, is_aref, expect, peek):
        mirror = False
        magnification = 1
        rotation = 0
        if peek() == _STRANS:
            flags = struct.unpack(">H", expect(_STRANS))[0]
            mirror = bool(flags & _REFLECTION_FLAG)
            if peek() == _MAG:
                mag = unpack_real8(expect(_MAG))
                magnification = int(round(mag))
                if abs(mag - magnification) > 1e-9 or magnification < 1:
                    raise GDSError(f"non-integer magnification {mag} unsupported")
            if peek() == _ANGLE:
                angle = unpack_real8(expect(_ANGLE))
                quarter, remainder = divmod(angle, 90.0)
                if abs(remainder) > 1e-9:
                    raise GDSError(f"non-90-degree angle {angle} unsupported")
                rotation = int(quarter) % 4
        colrow = None
        if is_aref:
            cols, rows = struct.unpack(">2h", expect(_COLROW))
            xy = struct.unpack(">6i", expect(_XY))
            ox, oy = xy[0], xy[1]
            if xy[3] != oy or xy[4] != ox:
                raise GDSError("only axis-aligned AREF lattices are supported")
            col_pitch = (xy[2] - ox) // cols
            row_pitch = (xy[5] - oy) // rows
            colrow = (cols, rows, col_pitch, row_pitch)
        else:
            xy = struct.unpack(">2i", expect(_XY))
            ox, oy = xy
        expect(_ENDEL)
        transform = Transform(
            dx=ox, dy=oy, rotation=rotation, mirror_x=mirror, magnification=magnification
        )
        return transform, colrow, (ox, oy)


# -- helpers -----------------------------------------------------------------------


def _iter_records(data: bytes) -> Iterator[Tuple[Tuple[int, int], bytes]]:
    offset = 0
    size = len(data)
    while offset < size:
        if offset + 4 > size:
            raise GDSError("truncated record header")
        length, rec_type, data_type = struct.unpack_from(">HBB", data, offset)
        if length < 4 or offset + length > size:
            raise GDSError(f"bad record length {length} at offset {offset}")
        yield (rec_type, data_type), data[offset + 4 : offset + length]
        offset += length


def _read_ascii(payload: bytes) -> str:
    return payload.rstrip(b"\x00").decode("ascii")


def _path_to_region(points, width: int, pathtype: int):
    """Convert a GDSII PATH centreline into boundary geometry.

    Only Manhattan paths are supported (consistent with the rest of the
    kernel).  Path type 0 ends flush; types 1 (round) and 2 (square) are
    both rendered as half-width square extensions -- the standard
    Manhattan approximation.
    """
    from ..geometry import Rect, Region

    if width <= 0:
        raise GDSError(f"PATH needs a positive width, got {width}")
    if len(points) < 2:
        raise GDSError("PATH needs at least two points")
    half = width // 2
    extend = half if pathtype in (1, 2) else 0
    rects = []
    for index, ((x1, y1), (x2, y2)) in enumerate(zip(points, points[1:])):
        if x1 != x2 and y1 != y2:
            raise GDSError(f"non-Manhattan PATH segment ({x1},{y1})->({x2},{y2})")
        first = index == 0
        last = index == len(points) - 2
        rects.append(_segment_rect((x1, y1), (x2, y2), half,
                                   extend if first else 0,
                                   extend if last else 0))
    for x, y in points[1:-1]:
        rects.append(Rect(x - half, y - half, x + half, y + half))
    return Region.from_rects(rects)


def _segment_rect(a, b, half: int, extend_start: int, extend_end: int):
    """The rect of one Manhattan path segment, with end extensions."""
    from ..geometry import Rect

    (x1, y1), (x2, y2) = a, b
    if y1 == y2:  # horizontal
        if x2 >= x1:
            return Rect(x1 - extend_start, y1 - half, x2 + extend_end, y1 + half)
        return Rect(x2 - extend_end, y1 - half, x1 + extend_start, y1 + half)
    if x2 >= x1 and y2 >= y1:  # vertical up
        return Rect(x1 - half, y1 - extend_start, x1 + half, y2 + extend_end)
    return Rect(x1 - half, y2 - extend_end, x1 + half, y1 + extend_start)


def _children_first(library: Library) -> Iterator[Cell]:
    """Cells ordered so every child precedes its parents."""
    emitted: Dict[str, bool] = {}

    def visit(cell: Cell) -> Iterator[Cell]:
        if emitted.get(cell.name):
            return
        emitted[cell.name] = True
        for child in cell.child_cells():
            yield from visit(child)
        yield cell

    for cell in library.cells:
        yield from visit(cell)


def write_gds(library: Library, path: Union[str, Path]) -> int:
    """Write ``library`` to ``path``; returns bytes written."""
    return GDSWriter().write(library, path)


def read_gds(path: Union[str, Path, bytes]) -> Library:
    """Read a GDSII stream from a path or byte string."""
    return GDSReader().read(path)
