"""Layer identities and the standard layer set of the synthetic process.

A :class:`Layer` is an immutable (gds_layer, datatype) pair with a
human-readable name.  The module also defines the layer stack used by the
design generators and OPC flows: drawn layers, derived RET layers (OPC
output, SRAFs, PSM phase shapes) and marker layers for verification
results.
"""

from __future__ import annotations

from typing import NamedTuple


class Layer(NamedTuple):
    """A GDSII layer/datatype pair.

    ``name`` is a display annotation only: two layers are equal when their
    (gds_layer, datatype) pairs match, so layers read back from a GDSII
    stream (which carries no names) compare equal to the named constants.
    """

    gds_layer: int
    datatype: int = 0
    name: str = ""

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Layer):
            return (self.gds_layer, self.datatype) == (other.gds_layer, other.datatype)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash((self.gds_layer, self.datatype))

    def __str__(self) -> str:
        return self.name or f"L{self.gds_layer}.{self.datatype}"

    def with_datatype(self, datatype: int, suffix: str = "") -> "Layer":
        """A derived layer sharing the gds layer number."""
        return Layer(self.gds_layer, datatype, (self.name + suffix) if self.name else "")


# -- drawn layers of the synthetic 2001-era process ---------------------------------

NWELL = Layer(1, 0, "nwell")
ACTIVE = Layer(2, 0, "active")
POLY = Layer(3, 0, "poly")
NIMPLANT = Layer(4, 0, "nimplant")
PIMPLANT = Layer(5, 0, "pimplant")
CONTACT = Layer(6, 0, "contact")
METAL1 = Layer(7, 0, "metal1")
VIA1 = Layer(8, 0, "via1")
METAL2 = Layer(9, 0, "metal2")
BOUNDARY = Layer(63, 0, "boundary")

#: All drawn layers in process order.
DRAWN_LAYERS = (
    NWELL,
    ACTIVE,
    POLY,
    NIMPLANT,
    PIMPLANT,
    CONTACT,
    METAL1,
    VIA1,
    METAL2,
)

# -- RET / mask-synthesis output layers ------------------------------------------------

#: Post-OPC main-feature shapes (datatype 10 of the drawn layer).
OPC_DATATYPE = 10
#: Sub-resolution assist features (datatype 11).
SRAF_DATATYPE = 11
#: Alternating-PSM 180-degree phase shapes (datatype 12).
PHASE_DATATYPE = 12


def opc_layer(drawn: Layer) -> Layer:
    """The post-OPC output layer paired with a drawn layer."""
    return drawn.with_datatype(OPC_DATATYPE, "_opc")


def sraf_layer(drawn: Layer) -> Layer:
    """The SRAF output layer paired with a drawn layer."""
    return drawn.with_datatype(SRAF_DATATYPE, "_sraf")


def phase_layer(drawn: Layer) -> Layer:
    """The 180-degree phase-shifter layer paired with a drawn layer."""
    return drawn.with_datatype(PHASE_DATATYPE, "_phase")
