"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch any failure originating in this package with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid or unsupported geometric input (e.g. non-rectilinear polygon)."""


class LayoutError(ReproError):
    """Invalid layout-database operation (unknown cell, cyclic hierarchy...)."""


class GDSError(LayoutError):
    """Malformed GDSII stream data or unsupported GDSII construct."""


class LithoError(ReproError):
    """Invalid optical model configuration or simulation request."""


class OPCError(ReproError):
    """OPC engine failure (non-convergence with strict settings, bad recipe)."""


class PhaseConflictError(OPCError):
    """Alternating-PSM phase assignment is infeasible (odd conflict cycle)."""


class VerificationError(ReproError):
    """Physical-verification (DRC/ORC) configuration error."""


class PreflightError(ReproError):
    """Static preflight found blocking problems; the job never started.

    ``diagnostics`` holds the full list of
    :class:`repro.lint.Diagnostic` findings (errors and otherwise) so
    callers can render or persist the report without re-running lint.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class PostflightError(ReproError):
    """Postflight MRC found blocking mask defects; nothing was exported.

    ``diagnostics`` holds the full list of
    :class:`repro.lint.Diagnostic` findings so callers can render or
    persist the report without re-running the check.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class DesignError(ReproError):
    """Design-generator error (rule set violation, unroutable request)."""
