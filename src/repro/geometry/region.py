"""Multi-polygon regions with exact boolean and sizing operations.

:class:`Region` is the central geometry container of the library: a set of
rectilinear loops interpreted under the nonzero winding rule.  Booleans
(``|``, ``&``, ``-``, ``^``), sizing (:meth:`Region.sized`), morphological
opening/closing, and rectangle decomposition are all exact integer
operations.

A region may be *raw* (loops as supplied, possibly overlapping) or
*canonical* (disjoint maximal outer loops counter-clockwise, holes
clockwise).  All operations accept raw regions and produce canonical ones;
:meth:`Region.merged` canonicalises explicitly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

from ..errors import GeometryError
from .booleans import boolean_loops, sweep_rects
from .point import Coord
from .polygon import Polygon
from .rect import Rect

RegionLike = Union["Region", Polygon, Rect, Sequence[Coord]]


class Region:
    """A set of rectilinear loops under the nonzero winding rule."""

    __slots__ = ("_loops", "_canonical")

    def __init__(self, items: Union[RegionLike, Iterable[RegionLike]] = ()):
        self._loops: List[List[Coord]] = []
        self._canonical = False
        if isinstance(items, (Region, Polygon, Rect)):
            items = [items]
        elif items and _is_loop(items):
            items = [items]  # a bare vertex list
        for item in items:  # type: ignore[union-attr]
            self._add(item)
        if not self._loops:
            self._canonical = True

    def _add(self, item: RegionLike) -> None:
        self._canonical = False
        if isinstance(item, Region):
            self._loops.extend([list(lp) for lp in item._loops])
        elif isinstance(item, Polygon):
            if not item.is_empty:
                self._loops.append(item.points)
        elif isinstance(item, Rect):
            if not item.is_empty:
                self._loops.append(Polygon.from_rect(item).points)
        else:
            poly = Polygon(item)  # validates rectilinearity
            if not poly.is_empty:
                self._loops.append(poly.points)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_rects(cls, rects: Iterable[Rect]) -> "Region":
        """A region covering every rect in ``rects`` (may overlap)."""
        region = cls()
        for rect in rects:
            region._add(rect)
        return region

    @classmethod
    def _from_canonical(cls, loops: List[List[Coord]]) -> "Region":
        region = cls()
        region._loops = loops
        region._canonical = True
        return region

    # -- basic queries ---------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the region covers no area."""
        if not self._loops:
            return True
        if self._canonical:
            return False
        return not self.merged()._loops

    @property
    def loops(self) -> List[List[Coord]]:
        """The raw vertex loops (copies)."""
        return [list(lp) for lp in self._loops]

    @property
    def num_loops(self) -> int:
        """Number of stored loops (outer boundaries plus holes)."""
        return len(self._loops)

    @property
    def num_vertices(self) -> int:
        """Total vertex count over all loops."""
        return sum(len(lp) for lp in self._loops)

    def polygons(self) -> List[Polygon]:
        """Each stored loop as a :class:`Polygon` (holes are CW loops)."""
        return [Polygon(lp, validate=False) for lp in self._loops]

    def __iter__(self) -> Iterator[Polygon]:
        return iter(self.polygons())

    def __bool__(self) -> bool:
        return not self.is_empty

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return (self ^ other).is_empty

    def __hash__(self) -> int:  # regions are mutable-free but eq is geometric
        return hash(frozenset(Polygon(lp, validate=False) for lp in self.merged()._loops))

    def __repr__(self) -> str:
        return f"Region(<{self.num_loops} loops, {self.num_vertices} vertices>)"

    @property
    def area(self) -> float:
        """Covered area in dbu^2 (holes excluded), exact."""
        merged = self.merged()
        return sum(Polygon(lp, validate=False).signed_area2() for lp in merged._loops) / 2.0

    def bbox(self) -> Optional[Rect]:
        """Bounding rect of all loops, or ``None`` when empty."""
        xs: List[int] = []
        ys: List[int] = []
        for lp in self._loops:
            xs.extend(p[0] for p in lp)
            ys.extend(p[1] for p in lp)
        if not xs:
            return None
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def contains_point(self, point: Coord) -> bool:
        """Nonzero-winding interior test across all loops."""
        px, py = point
        winding = 0
        for lp in self._loops:
            poly = Polygon(lp, validate=False)
            n = len(lp)
            on_boundary = False
            local = 0
            for i in range(n):
                x1, y1 = lp[i]
                x2, y2 = lp[(i + 1) % n]
                if x1 == x2:
                    ylo, yhi = (y1, y2) if y1 < y2 else (y2, y1)
                    if x1 == px and ylo <= py <= yhi:
                        on_boundary = True
                    if x1 < px and ylo <= py < yhi:
                        local += 1 if y2 < y1 else -1
                else:
                    xlo, xhi = (x1, x2) if x1 < x2 else (x2, x1)
                    if y1 == py and xlo <= px <= xhi:
                        on_boundary = True
            if on_boundary:
                return True
            winding += local
            del poly
        return winding != 0

    # -- booleans ----------------------------------------------------------------

    def merged(self) -> "Region":
        """The canonical form: disjoint maximal loops, holes clockwise."""
        if self._canonical:
            return self
        return Region._from_canonical(boolean_loops(self._loops, [], "union"))

    def _binary(self, other: RegionLike, op: str) -> "Region":
        other_region = other if isinstance(other, Region) else Region(other)
        return Region._from_canonical(
            boolean_loops(self._loops, other_region._loops, op)
        )

    def __or__(self, other: RegionLike) -> "Region":
        return self._binary(other, "union")

    def __and__(self, other: RegionLike) -> "Region":
        return self._binary(other, "intersection")

    def __sub__(self, other: RegionLike) -> "Region":
        return self._binary(other, "difference")

    def __xor__(self, other: RegionLike) -> "Region":
        return self._binary(other, "xor")

    union = __or__
    intersection = __and__
    difference = __sub__

    # -- decomposition -------------------------------------------------------------

    def rects(self) -> List[Rect]:
        """Disjoint slab-rectangle decomposition of the covered area."""
        return sweep_rects([self._loops], lambda counts: counts[0] != 0)

    def outer_polygons(self) -> List[Polygon]:
        """Only the outer (counter-clockwise) loops of the canonical form."""
        return [p for p in self.merged().polygons() if p.is_ccw]

    def holes(self) -> List[Polygon]:
        """Only the hole (clockwise) loops of the canonical form."""
        return [p for p in self.merged().polygons() if not p.is_ccw]

    # -- transforms ------------------------------------------------------------------

    def translated(self, delta: Coord) -> "Region":
        """The region moved by ``delta`` (canonical form is preserved)."""
        dx, dy = delta
        moved = [[(x + dx, y + dy) for x, y in lp] for lp in self._loops]
        region = Region()
        region._loops = moved
        region._canonical = self._canonical
        return region

    def transformed(self, trans) -> "Region":
        """The region mapped through a :class:`~repro.geometry.transform.Transform`.

        Mirroring flips every loop's orientation, which would make mirrored
        outer loops cancel against unmirrored ones under the nonzero
        winding rule; mapped loops are therefore re-reversed so each keeps
        its orientation class (outers CCW, holes CW).
        """
        mapped = [[trans.apply(p) for p in lp] for lp in self._loops]
        if trans.mirror_x:
            mapped = [list(reversed(lp)) for lp in mapped]
        region = Region()
        region._loops = mapped
        region._canonical = False
        return region

    # -- sizing / morphology ------------------------------------------------------------

    def sized(self, amount: int) -> "Region":
        """Grow (positive) or shrink (negative) every boundary by ``amount``.

        EDA-style sizing with mitred (square) corners.  Shrinking is robust:
        features narrower than ``2 * |amount|`` vanish entirely.
        """
        from .offset import sized as _sized  # local import to avoid a cycle

        return _sized(self, amount)

    def opened(self, amount: int) -> "Region":
        """Morphological opening: shrink then grow by ``amount``.

        Removes any feature (or neck) narrower than ``2 * amount``; useful
        for pinch detection.
        """
        if amount < 0:
            raise GeometryError("opening amount must be non-negative")
        return self.sized(-amount).sized(amount)

    def closed(self, amount: int) -> "Region":
        """Morphological closing: grow then shrink by ``amount``.

        Fills any gap (or slot) narrower than ``2 * amount``; useful for
        bridge detection.
        """
        if amount < 0:
            raise GeometryError("closing amount must be non-negative")
        return self.sized(amount).sized(-amount)


def _is_loop(items: object) -> bool:
    """Heuristic: is ``items`` a bare vertex list rather than an iterable of shapes?"""
    try:
        first = next(iter(items))  # type: ignore[call-overload]
    except (TypeError, StopIteration):
        return False
    return (
        isinstance(first, (tuple, list))
        and len(first) == 2
        and all(isinstance(v, int) for v in first)
    )
