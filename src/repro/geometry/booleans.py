"""Exact boolean operations on rectilinear polygons.

The engine is a classic x-sweep over vertical edges.  Every loop of every
operand contributes winding deltas to a compressed-y count array; between
consecutive event abscissae the count arrays fully describe coverage, and a
boolean predicate over them yields the slab rectangles of the result.  Slab
rectangles are re-stitched into maximal polygons by
:mod:`repro.geometry.stitch`.

Coordinates are exact integers throughout, so results are exact: no epsilon
tolerances, no slivers from floating-point snapping.

Winding convention: a *downward* vertical edge (y decreasing along the loop
direction) adds ``+1`` to the winding number of every point strictly to its
right; an upward edge adds ``-1``.  A counter-clockwise square then has
winding ``+1`` inside, matching the nonzero fill rule.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from .point import Coord
from .rect import Rect

Loop = Sequence[Coord]

#: A boolean predicate over per-operand winding-count arrays.
Predicate = Callable[[Sequence[np.ndarray]], np.ndarray]

PREDICATES: Dict[str, Predicate] = {
    "union": lambda counts: (counts[0] != 0) | (counts[1] != 0),
    "intersection": lambda counts: (counts[0] != 0) & (counts[1] != 0),
    "difference": lambda counts: (counts[0] != 0) & (counts[1] == 0),
    "xor": lambda counts: (counts[0] != 0) ^ (counts[1] != 0),
}


def sweep_rects(
    operands: Sequence[Sequence[Loop]], predicate: Predicate
) -> List[Rect]:
    """Decompose ``predicate(operands)`` into disjoint slab rectangles.

    ``operands`` is a list of polygon sets, each a list of loops; the
    predicate receives one winding-count array per operand (indexed over the
    elementary y-intervals of the compressed grid) and returns a boolean
    mask of covered intervals.

    Returned rectangles are disjoint, sorted by x then y, and each spans a
    single slab of the sweep with maximal y-extent.
    """
    edges = [_vertical_edges(loops) for loops in operands]
    total = sum(len(e) for e in edges)
    if total == 0:
        return []

    ys = np.unique(np.concatenate([e[:, 1:3].ravel() for e in edges if len(e)]))
    if len(ys) < 2:
        return []
    y_index = {int(y): i for i, y in enumerate(ys)}

    # events[x] -> list of (operand, iy1, iy2, weight)
    events: Dict[int, List[Tuple[int, int, int, int]]] = {}
    for op_idx, edge_arr in enumerate(edges):
        for x, y1, y2, w in edge_arr:
            events.setdefault(int(x), []).append(
                (op_idx, y_index[int(y1)], y_index[int(y2)], int(w))
            )

    xs = sorted(events)
    counts = [np.zeros(len(ys) - 1, dtype=np.int32) for _ in operands]
    rects: List[Rect] = []
    prev_x = xs[0]
    for x in xs:
        if x != prev_x:
            mask = predicate(counts)
            if mask.any():
                _emit_slab(rects, mask, ys, prev_x, x)
            prev_x = x
        for op_idx, i1, i2, w in events[x]:
            counts[op_idx][i1:i2] += w
    for c in counts:
        if c.any():  # pragma: no cover - indicates an unclosed input loop
            raise GeometryError("boolean sweep ended with open coverage")
    return rects


def _emit_slab(
    rects: List[Rect], mask: np.ndarray, ys: np.ndarray, x1: int, x2: int
) -> None:
    """Append one rect per maximal run of covered y-intervals."""
    padded = np.concatenate(([False], mask, [False]))
    delta = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(delta == 1)
    stops = np.flatnonzero(delta == -1)
    for lo, hi in zip(starts, stops):
        rects.append(Rect(x1, int(ys[lo]), x2, int(ys[hi])))


def _vertical_edges(loops: Sequence[Loop]) -> np.ndarray:
    """Extract all vertical edges of ``loops`` as rows ``(x, ylo, yhi, w)``.

    ``w`` is ``+1`` for downward edges (interior-right winding convention)
    and ``-1`` for upward edges.  Horizontal edges carry no winding
    information for an x-sweep and are skipped.
    """
    rows: List[Tuple[int, int, int, int]] = []
    for loop in loops:
        n = len(loop)
        if n < 4:
            continue
        for i in range(n):
            x1, y1 = loop[i]
            x2, y2 = loop[(i + 1) % n]
            if x1 != x2:
                if y1 != y2:
                    raise GeometryError(
                        f"non-rectilinear edge ({x1},{y1})->({x2},{y2})"
                    )
                continue
            if y1 == y2:
                continue
            if y2 < y1:
                rows.append((x1, y2, y1, 1))
            else:
                rows.append((x1, y1, y2, -1))
    if not rows:
        return np.empty((0, 4), dtype=np.int64)
    return np.array(rows, dtype=np.int64)


def boolean_rects(
    a_loops: Sequence[Loop], b_loops: Sequence[Loop], op: str
) -> List[Rect]:
    """Boolean of two loop sets, returned as a disjoint rect decomposition.

    ``op`` is one of ``"union"``, ``"intersection"``, ``"difference"``
    (A minus B) or ``"xor"``.  Inputs follow the nonzero winding rule, so
    overlapping or self-touching loops within one operand are handled
    correctly.
    """
    try:
        predicate = PREDICATES[op]
    except KeyError:
        raise GeometryError(
            f"unknown boolean op {op!r}; expected one of {sorted(PREDICATES)}"
        ) from None
    return sweep_rects([list(a_loops), list(b_loops)], predicate)


def boolean_loops(
    a_loops: Sequence[Loop], b_loops: Sequence[Loop], op: str
) -> List[List[Coord]]:
    """Boolean of two loop sets, returned as canonical maximal loops.

    Outer boundaries come back counter-clockwise and holes clockwise, with
    collinear vertices removed.
    """
    from .stitch import stitch_rects  # local import to avoid a cycle

    return stitch_rects(boolean_rects(a_loops, b_loops, op))
