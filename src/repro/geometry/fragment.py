"""Edge fragmentation and per-fragment biasing -- the OPC substrate.

Model-based OPC moves small pieces of polygon edges independently.  This
module cuts every loop of a region into tagged :class:`Fragment` objects
(corner pieces, line-end pieces, normal run pieces) and rebuilds a region
from per-fragment biases, inserting jogs between fragments of the same edge
and mitring true corners.

Loops follow the interior-left convention throughout (outer CCW, holes CW),
so each fragment's outward normal is the right-hand normal of its direction
and a positive bias always moves material outward.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence, Tuple

from ..errors import GeometryError
from .booleans import boolean_loops
from .point import Coord
from .region import Region


class FragmentTag(Enum):
    """Classification of a fragment, controlling OPC treatment."""

    NORMAL = "normal"
    CORNER_CONVEX = "corner_convex"
    CORNER_CONCAVE = "corner_concave"
    LINE_END = "line_end"


@dataclass(frozen=True)
class Fragment:
    """A directed piece of a polygon edge.

    ``start -> end`` runs along the loop direction; ``normal`` is the unit
    outward normal.  ``tag`` records the geometric role used by OPC rules.
    """

    start: Coord
    end: Coord
    tag: FragmentTag
    loop_index: int
    edge_index: int

    @property
    def direction(self) -> Coord:
        """Unit direction along the loop."""
        dx = _sign(self.end[0] - self.start[0])
        dy = _sign(self.end[1] - self.start[1])
        return (dx, dy)

    @property
    def normal(self) -> Coord:
        """Unit outward normal (right-hand normal of the direction)."""
        dx, dy = self.direction
        return (dy, -dx)

    @property
    def length(self) -> int:
        """Fragment length in dbu."""
        return abs(self.end[0] - self.start[0]) + abs(self.end[1] - self.start[1])

    @property
    def midpoint(self) -> Coord:
        """Midpoint of the fragment (floored to the grid)."""
        return (
            (self.start[0] + self.end[0]) // 2,
            (self.start[1] + self.end[1]) // 2,
        )

    def control_point(self, offset: int = 0) -> Coord:
        """The EPE measurement site: midpoint pushed ``offset`` dbu outward."""
        nx, ny = self.normal
        mx, my = self.midpoint
        return (mx + nx * offset, my + ny * offset)

    def shifted(self, bias: int) -> Tuple[Coord, Coord]:
        """Endpoint pair after moving the fragment ``bias`` dbu outward."""
        nx, ny = self.normal
        return (
            (self.start[0] + nx * bias, self.start[1] + ny * bias),
            (self.end[0] + nx * bias, self.end[1] + ny * bias),
        )


@dataclass(frozen=True)
class FragmentationSpec:
    """Fragmentation recipe.

    ``corner_length_nm``: length reserved next to each corner for a dedicated
    corner fragment.  ``max_length_nm``: maximum run-fragment length.
    ``min_length_nm``: below this an edge is not subdivided at all.
    ``line_end_max_nm``: edges no longer than this whose neighbouring corners
    are both convex are tagged as line ends.
    """

    corner_length_nm: int
    max_length_nm: int
    min_length_nm: int
    line_end_max_nm: int

    def validated(self) -> "FragmentationSpec":
        """Return self, raising :class:`GeometryError` on nonsense values."""
        if min(self.corner_length_nm, self.max_length_nm, self.min_length_nm) <= 0:
            raise GeometryError("fragmentation lengths must be positive")
        if self.max_length_nm < self.min_length_nm:
            raise GeometryError("max_length_nm must be >= min_length_nm")
        return self


def fragment_region(region: Region, spec: FragmentationSpec) -> List[List[Fragment]]:
    """Fragment every loop of the canonical form of ``region``.

    Returns one fragment list per loop, in loop order, covering each loop's
    boundary exactly once.
    """
    spec = spec.validated()
    result: List[List[Fragment]] = []
    for loop_index, loop in enumerate(region.merged().loops):
        result.append(_fragment_loop(loop, loop_index, spec))
    return result


def _fragment_loop(
    loop: Sequence[Coord], loop_index: int, spec: FragmentationSpec
) -> List[Fragment]:
    n = len(loop)
    convex = [_is_convex(loop[i - 1], loop[i], loop[(i + 1) % n]) for i in range(n)]
    fragments: List[Fragment] = []
    for i in range(n):
        start = loop[i]
        end = loop[(i + 1) % n]
        start_convex = convex[i]
        end_convex = convex[(i + 1) % n]
        fragments.extend(
            _fragment_edge(start, end, start_convex, end_convex, loop_index, i, spec)
        )
    return fragments


def _fragment_edge(
    start: Coord,
    end: Coord,
    start_convex: bool,
    end_convex: bool,
    loop_index: int,
    edge_index: int,
    spec: FragmentationSpec,
) -> List[Fragment]:
    length = abs(end[0] - start[0]) + abs(end[1] - start[1])

    def frag(a: Coord, b: Coord, tag: FragmentTag) -> Fragment:
        return Fragment(a, b, tag, loop_index, edge_index)

    if length <= spec.line_end_max_nm and start_convex and end_convex:
        return [frag(start, end, FragmentTag.LINE_END)]
    if length < 2 * spec.corner_length_nm + spec.min_length_nm:
        return [frag(start, end, FragmentTag.NORMAL)]

    pieces: List[Fragment] = []
    head = _along(start, end, spec.corner_length_nm)
    tail = _along(end, start, spec.corner_length_nm)
    pieces.append(
        frag(
            start,
            head,
            FragmentTag.CORNER_CONVEX if start_convex else FragmentTag.CORNER_CONCAVE,
        )
    )
    # Split the interior run into near-equal chunks no longer than max_length_nm.
    run = length - 2 * spec.corner_length_nm
    chunks = max(1, -(-run // spec.max_length_nm))
    cursor = head
    for k in range(1, chunks + 1):
        nxt = _along(head, tail, (run * k) // chunks)
        pieces.append(frag(cursor, nxt, FragmentTag.NORMAL))
        cursor = nxt
    pieces.append(
        frag(
            tail,
            end,
            FragmentTag.CORNER_CONVEX if end_convex else FragmentTag.CORNER_CONCAVE,
        )
    )
    return pieces


def apply_biases(
    loop_fragments: Sequence[Sequence[Fragment]], biases: Sequence[Sequence[int]]
) -> Region:
    """Rebuild a region from fragments moved outward by per-fragment biases.

    ``biases[i][j]`` moves fragment ``j`` of loop ``i`` outward by that many
    dbu (negative values move material inward).  Jogs connect collinear
    neighbours with different biases; perpendicular neighbours are mitred.
    Any self-intersection created by large negative biases is resolved by a
    nonzero-winding merge.
    """
    if len(loop_fragments) != len(biases):
        raise GeometryError("biases must match fragment loops")
    loops: List[List[Coord]] = []
    for fragments, loop_biases in zip(loop_fragments, biases):
        if len(fragments) != len(loop_biases):
            raise GeometryError("bias count must match fragment count")
        loops.append(_rebuild_loop(fragments, loop_biases))
    loops = [lp for lp in loops if len(lp) >= 4]
    return Region._from_canonical(boolean_loops(loops, [], "union"))


def _rebuild_loop(
    fragments: Sequence[Fragment], biases: Sequence[int]
) -> List[Coord]:
    points: List[Coord] = []
    n = len(fragments)
    for i in range(n):
        cur = fragments[i]
        nxt = fragments[(i + 1) % n]
        cur_start, cur_end = cur.shifted(biases[i])
        nxt_start, _ = nxt.shifted(biases[(i + 1) % n])
        if not points or points[-1] != cur_start:
            points.append(cur_start)
        if cur.direction == nxt.direction:
            # Same-edge neighbours: emit the jog pair (dedup handles equal
            # biases via the final simplification).
            points.append(cur_end)
        else:
            # Perpendicular corner: mitre to the intersection of the two
            # offset lines.
            mitre_x = cur_end[0] if cur.direction[0] == 0 else nxt_start[0]
            mitre_y = cur_end[1] if cur.direction[1] == 0 else nxt_start[1]
            points.append((mitre_x, mitre_y))
    return points


def _is_convex(prev: Coord, cur: Coord, nxt: Coord) -> bool:
    """True when the corner at ``cur`` juts outward (left turn, interior-left)."""
    ax, ay = cur[0] - prev[0], cur[1] - prev[1]
    bx, by = nxt[0] - cur[0], nxt[1] - cur[1]
    return ax * by - ay * bx > 0


def _along(start: Coord, end: Coord, distance: int) -> Coord:
    """The point ``distance`` dbu from ``start`` toward ``end``."""
    dx = _sign(end[0] - start[0])
    dy = _sign(end[1] - start[1])
    return (start[0] + dx * distance, start[1] + dy * distance)


def _sign(v: int) -> int:
    if v > 0:
        return 1
    if v < 0:
        return -1
    return 0
