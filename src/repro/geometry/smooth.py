"""Jog smoothing: bounded-error simplification of OPC output.

Model-based OPC emits staircases of small jogs; every jog costs mask
figures, shots and inspection time, but a jog smaller than the writer (or
the process) can resolve carries no information.  ``smooth_jogs`` removes
jogs below a tolerance by snapping the shorter neighbouring edge onto the
longer one's line -- each removal displaces the boundary locally by at
most the tolerance, so CD impact is strictly bounded.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import GeometryError
from .booleans import boolean_loops
from .point import Coord
from .region import Region


def smooth_jogs(region: Region, tolerance_nm: int) -> Region:
    """Remove boundary jogs shorter than ``tolerance_nm``.

    A jog is a short edge whose two neighbours run parallel to each other;
    it is eliminated by moving the shorter neighbour onto the longer one's
    line.  The local boundary displacement is at most ``tolerance_nm``.
    Repeated passes run until no removable jog remains.
    """
    if tolerance_nm <= 0:
        raise GeometryError(f"tolerance must be positive, got {tolerance_nm}")
    merged = region.merged()
    if merged.is_empty:
        return merged
    loops: List[List[Coord]] = []
    for loop in merged.loops:
        loops.append(_smooth_loop(loop, tolerance_nm))
    loops = [lp for lp in loops if len(lp) >= 4]
    return Region._from_canonical(boolean_loops(loops, [], "union"))


def _smooth_loop(loop: List[Coord], tolerance: int) -> List[Coord]:
    current = list(loop)
    for _pass in range(len(loop)):  # each pass removes >= 1 jog or stops
        jog = _find_jog(current, tolerance)
        if jog is None:
            break
        current = _remove_jog(current, jog)
        if len(current) < 4:
            return []
    return current


def _find_jog(loop: List[Coord], tolerance: int) -> Optional[int]:
    """Index of the start vertex of a removable jog edge, or ``None``."""
    n = len(loop)
    for i in range(n):
        p0 = loop[(i - 1) % n]
        p1 = loop[i]
        p2 = loop[(i + 1) % n]
        p3 = loop[(i + 2) % n]
        jog_len = abs(p2[0] - p1[0]) + abs(p2[1] - p1[1])
        if jog_len == 0 or jog_len > tolerance:
            continue
        d_jog = _direction(p1, p2)
        d_prev = _direction(p0, p1)
        d_next = _direction(p2, p3)
        # Neighbours must be non-degenerate, parallel to each other, and
        # perpendicular to the jog (a true staircase step).
        if d_prev == (0, 0) or d_next == (0, 0):
            continue
        if d_prev[0] * d_next[1] - d_prev[1] * d_next[0] != 0:
            continue
        if d_prev[0] * d_jog[0] + d_prev[1] * d_jog[1] != 0:
            continue
        return i
    return None


def _remove_jog(loop: List[Coord], i: int) -> List[Coord]:
    """Snap the shorter neighbour of jog ``loop[i] -> loop[i+1]``."""
    n = len(loop)
    p0 = loop[(i - 1) % n]
    p1 = loop[i]
    p2 = loop[(i + 1) % n]
    p3 = loop[(i + 2) % n]
    prev_len = abs(p1[0] - p0[0]) + abs(p1[1] - p0[1])
    next_len = abs(p3[0] - p2[0]) + abs(p3[1] - p2[1])
    vertical_jog = p1[0] == p2[0] and p1[1] != p2[1]
    result = list(loop)
    if prev_len >= next_len:
        # Move the next edge onto the previous edge's line.
        if vertical_jog:  # neighbours horizontal: adopt p1's y
            result[(i + 1) % n] = (p2[0], p1[1])
            result[(i + 2) % n] = (p3[0], p1[1])
        else:  # neighbours vertical: adopt p1's x
            result[(i + 1) % n] = (p1[0], p2[1])
            result[(i + 2) % n] = (p1[0], p3[1])
        del result[i]
    else:
        # Move the previous edge onto the next edge's line.
        if vertical_jog:
            result[i] = (p1[0], p2[1])
            result[(i - 1) % n] = (p0[0], p2[1])
        else:
            result[i] = (p2[0], p1[1])
            result[(i - 1) % n] = (p2[0], p0[1])
        del result[(i + 1) % n]
    return _dedupe(result)


def _direction(a: Coord, b: Coord) -> Tuple[int, int]:
    dx = (b[0] > a[0]) - (b[0] < a[0])
    dy = (b[1] > a[1]) - (b[1] < a[1])
    return (dx, dy)


def _dedupe(loop: List[Coord]) -> List[Coord]:
    """Drop duplicate and collinear vertices.

    Jog removal can leave collinear runs; the removal rules assume strictly
    alternating horizontal/vertical edges, so loops are re-simplified after
    every step.
    """
    from .polygon import _strip_degenerate

    return _strip_degenerate(list(loop))
