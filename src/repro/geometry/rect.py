"""Axis-aligned integer rectangles.

``Rect`` is the workhorse primitive of the geometry kernel: boolean results
are decomposed into rectangles, rasterization consumes rectangles, and mask
fracture emits rectangles.  Rectangles are half-open in neither axis -- they
are closed regions ``[x1, x2] x [y1, y2]`` with ``x1 <= x2`` and
``y1 <= y2``; a degenerate rect (zero width or height) has zero area and is
considered empty for coverage purposes.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Optional

from .point import Coord, Point


class Rect(NamedTuple):
    """An axis-aligned rectangle with integer dbu corners."""

    x1: int
    y1: int
    x2: int
    y2: int

    @classmethod
    def from_corners(cls, a: Coord, b: Coord) -> "Rect":
        """Build a normalised rect from two opposite corners in any order."""
        ax, ay = a
        bx, by = b
        return cls(min(ax, bx), min(ay, by), max(ax, bx), max(ay, by))

    @classmethod
    def from_center(cls, center: Coord, width: int, height: int) -> "Rect":
        """Build a rect of ``width x height`` centred on ``center``.

        Odd sizes are accommodated by flooring the lower-left corner.
        """
        cx, cy = center
        x1 = cx - width // 2
        y1 = cy - height // 2
        return cls(x1, y1, x1 + width, y1 + height)

    @property
    def width(self) -> int:
        """Horizontal extent."""
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        """Vertical extent."""
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        """Enclosed area in dbu^2."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centre point, rounded down to the grid."""
        return Point((self.x1 + self.x2) // 2, (self.y1 + self.y2) // 2)

    @property
    def is_empty(self) -> bool:
        """True when the rect has zero (or negative) area."""
        return self.x2 <= self.x1 or self.y2 <= self.y1

    def corners(self) -> list[Point]:
        """The four corners in counter-clockwise order from lower-left."""
        return [
            Point(self.x1, self.y1),
            Point(self.x2, self.y1),
            Point(self.x2, self.y2),
            Point(self.x1, self.y2),
        ]

    def contains(self, point: Coord) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        x, y = point
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely within this rect."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the two rects share interior or boundary points."""
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rect, or ``None`` when disjoint."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 < x1 or y2 < y1:
            return None
        return Rect(x1, y1, x2, y2)

    def expanded(self, margin: int) -> "Rect":
        """A rect grown (or shrunk, for negative margin) on every side."""
        return Rect(
            self.x1 - margin, self.y1 - margin, self.x2 + margin, self.y2 + margin
        )

    def translated(self, delta: Coord) -> "Rect":
        """A rect moved by ``delta``."""
        dx, dy = delta
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """The tightest rect covering every input rect (``None`` for no input)."""
    result: Optional[Rect] = None
    for rect in rects:
        if result is None:
            result = rect
        else:
            result = Rect(
                min(result.x1, rect.x1),
                min(result.y1, rect.y1),
                max(result.x2, rect.x2),
                max(result.y2, rect.y2),
            )
    return result
