"""A uniform-grid spatial index for rectangles and edges.

OPC and verification repeatedly ask "what geometry is near this point /
edge?".  A simple bucket grid is ideal for layout data: features are small
and densely packed, so bucket occupancy stays balanced without the
complexity of an R-tree.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Iterable, Iterator, List, Set, Tuple, TypeVar

from ..errors import GeometryError
from .rect import Rect

T = TypeVar("T")


class GridIndex(Generic[T]):
    """Buckets items by the grid cells their bounding rects overlap."""

    def __init__(self, cell_size: int):
        if cell_size <= 0:
            raise GeometryError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self._buckets: Dict[Tuple[int, int], List[Tuple[Rect, T]]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, bbox: Rect, item: T) -> None:
        """Register ``item`` with bounding rect ``bbox``."""
        for key in self._cells(bbox):
            self._buckets[key].append((bbox, item))
        self._count += 1

    def insert_all(self, items: Iterable[Tuple[Rect, T]]) -> None:
        """Register many ``(bbox, item)`` pairs."""
        for bbox, item in items:
            self.insert(bbox, item)

    def query(self, window: Rect) -> Iterator[Tuple[Rect, T]]:
        """Yield items whose bounding rects intersect ``window``.

        Each item is yielded at most once even when it spans several cells.
        """
        seen: Set[int] = set()
        for key in self._cells(window):
            for bbox, item in self._buckets.get(key, ()):
                marker = id(item)
                if marker in seen:
                    continue
                if bbox.intersects(window):
                    seen.add(marker)
                    yield bbox, item

    def query_items(self, window: Rect) -> List[T]:
        """Items (without bboxes) intersecting ``window``."""
        return [item for _bbox, item in self.query(window)]

    def _cells(self, bbox: Rect) -> Iterator[Tuple[int, int]]:
        cs = self.cell_size
        ix1 = bbox.x1 // cs
        iy1 = bbox.y1 // cs
        ix2 = bbox.x2 // cs
        iy2 = bbox.y2 // cs
        for ix in range(ix1, ix2 + 1):
            for iy in range(iy1, iy2 + 1):
                yield (ix, iy)
