"""Exact sizing (offset) of rectilinear regions.

Dilation offsets every edge outward along its normal and resolves the
resulting self-intersections with a nonzero-winding merge; corners are
mitred (square), matching conventional EDA sizing semantics.  Erosion is
computed through the complement -- ``erode(P) = frame - dilate(frame - P)``
-- which is robust for vanishing slivers and splitting necks.
"""

from __future__ import annotations

from typing import List

from ..errors import GeometryError
from .booleans import boolean_loops
from .point import Coord
from .region import Region


def sized(region: Region, amount: int) -> "Region":
    """Grow (``amount > 0``) or shrink (``amount < 0``) a region's boundary."""
    if amount == 0:
        return region.merged()
    if amount > 0:
        return dilated(region, amount)
    return eroded(region, -amount)


def dilated(region: Region, amount: int) -> Region:
    """The region with every boundary pushed outward by ``amount`` dbu."""
    if amount < 0:
        raise GeometryError("dilated() needs a non-negative amount")
    merged = region.merged()
    if amount == 0 or merged.is_empty:
        return merged
    if any(_signed_area2(loop) < 0 for loop in merged.loops):
        # A hole shrunk past collapse in both axes inverts through its
        # centre -- a 180-degree point reflection that *preserves* the
        # hole's clockwise winding, so the raw edge-offset loop would keep
        # subtracting where the hole should have vanished.  Minkowski
        # distributes over union, so dilating an exact rectangle cover is
        # immune to loop inversion.
        return Region.from_rects(
            rect.expanded(amount) for rect in merged.rects()
        ).merged()
    offset = [_offset_loop(loop, amount) for loop in merged.loops]
    offset = [lp for lp in offset if len(lp) >= 4]
    return Region._from_canonical(boolean_loops(offset, [], "union"))


def eroded(region: Region, amount: int) -> Region:
    """The region with every boundary pulled inward by ``amount`` dbu."""
    if amount < 0:
        raise GeometryError("eroded() needs a non-negative amount")
    merged = region.merged()
    box = merged.bbox()
    if box is None:
        return merged
    frame = Region(box.expanded(2 * amount + 1))
    complement = frame - merged
    grown_complement = dilated(complement, amount)
    return frame - grown_complement


def _signed_area2(loop: List[Coord]) -> int:
    """Twice the shoelace area of one loop (positive = CCW = outer)."""
    total = 0
    for i in range(len(loop)):
        x1, y1 = loop[i]
        x2, y2 = loop[(i + 1) % len(loop)]
        total += x1 * y2 - x2 * y1
    return total


def _offset_loop(loop: List[Coord], amount: int) -> List[Coord]:
    """Offset one oriented loop outward by ``amount`` with mitred corners.

    Loops follow the interior-left convention (outer CCW, holes CW), so the
    outward normal of each edge is the right-hand normal of its direction.
    The returned loop may self-intersect; callers must clean it up with a
    winding merge.
    """
    n = len(loop)
    if n < 4:
        return []
    # Offset line coordinate for each edge: vertical edges keep an x, and
    # horizontal edges keep a y, both shifted by amount * outward normal.
    lines: List[tuple[str, int]] = []
    for i in range(n):
        x1, y1 = loop[i]
        x2, y2 = loop[(i + 1) % n]
        if x1 == x2:  # vertical edge
            direction = 1 if y2 > y1 else -1
            # right normal of (0, direction) is (direction, 0)
            lines.append(("v", x1 + direction * amount))
        elif y1 == y2:  # horizontal edge
            direction = 1 if x2 > x1 else -1
            # right normal of (direction, 0) is (0, -direction)
            lines.append(("h", y1 - direction * amount))
        else:  # pragma: no cover - regions validate rectilinearity upstream
            raise GeometryError("non-rectilinear edge in offset")
    # New vertices: intersection of each consecutive pair of offset lines.
    result: List[Coord] = []
    for i in range(n):
        kind_prev, c_prev = lines[i - 1]
        kind_cur, c_cur = lines[i]
        if kind_prev == kind_cur:
            # Consecutive parallel edges should not survive loop
            # simplification; treat as collinear and skip the vertex.
            continue
        x = c_prev if kind_prev == "v" else c_cur
        y = c_prev if kind_prev == "h" else c_cur
        result.append((x, y))
    return result
