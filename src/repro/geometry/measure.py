"""Width/space measurement by ray casting against indexed edges.

Rule-based OPC and SRAF placement classify each edge by the width of its
own feature and the space to the nearest neighbour.  :class:`EdgeIndex`
supports exact axis-aligned ray queries against the boundary edges of a
region.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import GeometryError
from .point import Coord
from .rect import Rect
from .region import Region
from .spatial import GridIndex

_Edge = Tuple[int, int, int, int]  # x1, y1, x2, y2 (axis-aligned)


class EdgeIndex:
    """Spatially-indexed boundary edges of a region, for ray queries."""

    def __init__(self, region: Region, cell_size: int = 2000):
        self._index: GridIndex[_Edge] = GridIndex(cell_size)
        for loop in region.merged().loops:
            n = len(loop)
            for i in range(n):
                x1, y1 = loop[i]
                x2, y2 = loop[(i + 1) % n]
                bbox = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
                self._index.insert(bbox, (x1, y1, x2, y2))

    def ray_distance(
        self, origin: Coord, direction: Coord, max_distance: int
    ) -> Optional[int]:
        """Distance from ``origin`` along ``direction`` to the nearest edge.

        ``direction`` must be an axis unit vector.  Only strictly positive
        distances count (an edge passing through the origin is ignored, so a
        query started on a boundary finds the *facing* geometry).  Returns
        ``None`` when nothing lies within ``max_distance``.
        """
        dx, dy = direction
        if abs(dx) + abs(dy) != 1 or dx * dy != 0:
            raise GeometryError(f"direction must be an axis unit vector, got {direction}")
        ox, oy = origin
        window = Rect.from_corners(origin, (ox + dx * max_distance, oy + dy * max_distance))
        best: Optional[int] = None
        for _bbox, (x1, y1, x2, y2) in self._index.query(window):
            distance = _crossing_distance(ox, oy, dx, dy, x1, y1, x2, y2)
            if distance is None or distance <= 0 or distance > max_distance:
                continue
            if best is None or distance < best:
                best = distance
        return best

    def clearances(
        self, origin: Coord, normal: Coord, max_distance: int
    ) -> Tuple[Optional[int], Optional[int]]:
        """``(space, width)`` seen from a boundary point with outward ``normal``.

        ``space`` is the distance outward to facing geometry; ``width`` is
        the distance inward across the feature's own body.
        """
        space = self.ray_distance(origin, normal, max_distance)
        width = self.ray_distance(origin, (-normal[0], -normal[1]), max_distance)
        return space, width


def _crossing_distance(
    ox: int, oy: int, dx: int, dy: int, x1: int, y1: int, x2: int, y2: int
) -> Optional[int]:
    """Signed ray-edge crossing distance, or ``None`` when the ray misses.

    Half-open interval logic on the perpendicular axis avoids counting a hit
    twice when the ray grazes a shared edge endpoint.
    """
    if dx != 0:  # horizontal ray hits vertical edges
        if x1 != x2:
            return None
        ylo, yhi = (y1, y2) if y1 < y2 else (y2, y1)
        if not (ylo <= oy < yhi):
            return None
        return (x1 - ox) * dx
    if y1 != y2:  # vertical ray hits horizontal edges
        return None
    xlo, xhi = (x1, x2) if x1 < x2 else (x2, x1)
    if not (xlo <= ox < xhi):
        return None
    return (y1 - oy) * dy


def feature_widths(region: Region, axis: str = "x") -> List[int]:
    """All distinct run widths of the region along an axis.

    Decomposes the region into slab rects and reports each rect's extent
    along ``axis``; handy for sanity-checking generated test structures.
    """
    if axis not in ("x", "y"):
        raise GeometryError(f"axis must be 'x' or 'y', got {axis!r}")
    widths = set()
    for rect in region.rects():
        widths.add(rect.width if axis == "x" else rect.height)
    return sorted(widths)
