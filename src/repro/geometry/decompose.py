"""Decomposition of regions into rectangles and mask-writer figures.

Two decompositions matter in this library:

* the *slab* decomposition (vertical slabs from the boolean sweep), which
  feeds rasterization and area computations, and
* the *fracture* decomposition used by mask data preparation, where each
  figure must also respect a maximum writer figure size.

For Manhattan geometry every trapezoid degenerates to a rectangle, so the
fracture output is a rectangle list; shot counts follow directly.
"""

from __future__ import annotations

from typing import List

from ..errors import GeometryError
from .region import Region
from .rect import Rect


def decompose_rects(region: Region) -> List[Rect]:
    """Disjoint slab rectangles covering ``region`` exactly."""
    return region.rects()


def decompose_max_rects(region: Region) -> List[Rect]:
    """A greedy merge of the slab decomposition into fewer rectangles.

    Adjacent slab rects with identical y-extent are fused horizontally.
    The result is still exact and disjoint, typically 2-4x fewer figures
    than the raw slab decomposition on standard-cell data.
    """
    slabs = sorted(region.rects(), key=lambda r: (r.y1, r.y2, r.x1))
    merged: List[Rect] = []
    for rect in slabs:
        if (
            merged
            and merged[-1].y1 == rect.y1
            and merged[-1].y2 == rect.y2
            and merged[-1].x2 == rect.x1
        ):
            merged[-1] = Rect(merged[-1].x1, rect.y1, rect.x2, rect.y2)
        else:
            merged.append(rect)
    return merged


def fracture(region: Region, max_figure: int) -> List[Rect]:
    """Fracture a region into writer figures no larger than ``max_figure``.

    Models mask data preparation for a variable-shaped-beam (VSB) or raster
    writer: the merged rectangle decomposition is split so that no figure
    exceeds ``max_figure`` dbu on either axis.
    """
    if max_figure <= 0:
        raise GeometryError(f"max_figure must be positive, got {max_figure}")
    figures: List[Rect] = []
    for rect in decompose_max_rects(region):
        figures.extend(_split_rect(rect, max_figure))
    return figures


def _split_rect(rect: Rect, max_figure: int) -> List[Rect]:
    """Split one rect into a grid of sub-rects bounded by ``max_figure``."""
    xs = _cuts(rect.x1, rect.x2, max_figure)
    ys = _cuts(rect.y1, rect.y2, max_figure)
    pieces: List[Rect] = []
    for i in range(len(xs) - 1):
        for j in range(len(ys) - 1):
            pieces.append(Rect(xs[i], ys[j], xs[i + 1], ys[j + 1]))
    return pieces


def _cuts(lo: int, hi: int, max_span: int) -> List[int]:
    """Cut positions splitting ``[lo, hi]`` into near-equal spans <= max_span."""
    span = hi - lo
    if span <= max_span:
        return [lo, hi]
    pieces = -(-span // max_span)  # ceil division
    cuts = [lo + (span * k) // pieces for k in range(pieces)]
    cuts.append(hi)
    return cuts
