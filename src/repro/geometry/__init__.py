"""Exact integer geometry kernel for Manhattan layout data.

Public surface:

* :class:`Point`, :class:`Rect`, :class:`Polygon`, :class:`Region` -- the
  value types;
* booleans via ``Region`` operators (``|``, ``&``, ``-``, ``^``) and sizing
  via :meth:`Region.sized`;
* :class:`Transform` -- exact 90-degree layout transforms;
* fragmentation (:func:`fragment_region`, :func:`apply_biases`) for OPC;
* decomposition/fracture (:func:`decompose_rects`, :func:`fracture`);
* measurement (:class:`EdgeIndex`) and spatial indexing (:class:`GridIndex`).
"""

from .booleans import boolean_loops, boolean_rects
from .decompose import decompose_max_rects, decompose_rects, fracture
from .fragment import (
    Fragment,
    FragmentationSpec,
    FragmentTag,
    apply_biases,
    fragment_region,
)
from .measure import EdgeIndex, feature_widths
from .point import Coord, Point
from .polygon import Polygon
from .rect import Rect, bounding_box
from .region import Region
from .smooth import smooth_jogs
from .spatial import GridIndex
from .transform import Transform

__all__ = [
    "Coord",
    "EdgeIndex",
    "Fragment",
    "FragmentTag",
    "FragmentationSpec",
    "GridIndex",
    "Point",
    "Polygon",
    "Rect",
    "Region",
    "Transform",
    "apply_biases",
    "boolean_loops",
    "boolean_rects",
    "bounding_box",
    "decompose_max_rects",
    "decompose_rects",
    "feature_widths",
    "fracture",
    "fragment_region",
    "smooth_jogs",
]
