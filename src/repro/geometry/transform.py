"""Exact layout transforms: 90-degree rotations, mirroring, translation.

GDSII structure references allow arbitrary angles and magnifications, but
production Manhattan layouts use only the eight axis-preserving symmetries
(4 rotations x optional x-mirror) plus translation and integer
magnification.  Restricting to those keeps every transform exact on the
integer grid, which the boolean engine requires.
"""

from __future__ import annotations

from typing import NamedTuple

from ..errors import GeometryError
from .point import Coord, Point
from .rect import Rect


class Transform(NamedTuple):
    """An exact layout transform.

    The transform first mirrors about the x-axis (if ``mirror_x``), then
    magnifies, then rotates counter-clockwise by ``rotation * 90`` degrees,
    then translates by ``(dx, dy)`` -- the GDSII STRANS ordering.
    """

    dx: int = 0
    dy: int = 0
    rotation: int = 0  # quarter turns CCW, 0..3
    mirror_x: bool = False  # mirror about the x axis (flips y), applied first
    magnification: int = 1

    @classmethod
    def identity(cls) -> "Transform":
        """The do-nothing transform."""
        return cls()

    @classmethod
    def translation(cls, dx: int, dy: int) -> "Transform":
        """A pure translation."""
        return cls(dx=dx, dy=dy)

    def validated(self) -> "Transform":
        """Return self, raising :class:`GeometryError` on invalid fields."""
        if self.magnification < 1:
            raise GeometryError(f"magnification must be >= 1, got {self.magnification}")
        return self._replace(rotation=self.rotation % 4)

    def apply(self, point: Coord) -> Coord:
        """Map a point through the transform."""
        x, y = point
        if self.mirror_x:
            y = -y
        if self.magnification != 1:
            x *= self.magnification
            y *= self.magnification
        r = self.rotation % 4
        if r == 1:
            x, y = -y, x
        elif r == 2:
            x, y = -x, -y
        elif r == 3:
            x, y = y, -x
        return (x + self.dx, y + self.dy)

    def apply_rect(self, rect: Rect) -> Rect:
        """Map a rect through the transform (result is re-normalised)."""
        return Rect.from_corners(
            self.apply((rect.x1, rect.y1)), self.apply((rect.x2, rect.y2))
        )

    def then(self, outer: "Transform") -> "Transform":
        """Compose: ``self`` applied first, then ``outer``.

        The result maps any point ``p`` to ``outer.apply(self.apply(p))``.
        """
        ox, oy = outer.apply((self.dx, self.dy))
        rotation = self.rotation % 4
        mirror = self.mirror_x != outer.mirror_x
        if outer.mirror_x:
            # Mirroring conjugates the rotation: M R(k) == R(-k) M.
            rotation = (-rotation) % 4
        rotation = (rotation + outer.rotation) % 4
        return Transform(
            dx=ox,
            dy=oy,
            rotation=rotation,
            mirror_x=mirror,
            magnification=self.magnification * outer.magnification,
        )

    def inverse(self) -> "Transform":
        """The transform undoing this one (magnification must be 1)."""
        if self.magnification != 1:
            raise GeometryError("cannot invert a magnifying transform exactly")
        # Linear part L = R(rotation) * M.  Without mirroring the inverse's
        # linear part is R(-rotation); with mirroring, conjugation
        # (M R(k) M == R(-k)) makes a mirrored transform its own rotational
        # inverse: (R(k) M)^-1 == R(k) M.
        rotation = self.rotation % 4 if self.mirror_x else (-self.rotation) % 4
        inv = Transform(rotation=rotation, mirror_x=self.mirror_x)
        dx, dy = inv.apply((-self.dx, -self.dy))
        return inv._replace(dx=dx, dy=dy)

    @property
    def is_identity(self) -> bool:
        """True when the transform maps every point to itself."""
        return (
            self.dx == 0
            and self.dy == 0
            and self.rotation % 4 == 0
            and not self.mirror_x
            and self.magnification == 1
        )

    def origin(self) -> Point:
        """Where the transform sends the origin."""
        return Point(self.dx, self.dy)
