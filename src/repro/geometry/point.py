"""Integer lattice points and vectors.

Layout geometry lives on an integer grid (1 dbu = 1 nm).  ``Point`` is an
immutable value type supporting the small amount of vector arithmetic the
rest of the geometry kernel needs.  Hot loops inside the boolean engine use
plain ``(x, y)`` tuples for speed; ``Point`` is the user-facing type.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Sequence, Tuple

Coord = Tuple[int, int]


class Point(NamedTuple):
    """An immutable integer point / vector in dbu."""

    x: int
    y: int

    def __add__(self, other: "Point | Coord") -> "Point":  # type: ignore[override]
        ox, oy = other
        return Point(self.x + ox, self.y + oy)

    def __sub__(self, other: "Point | Coord") -> "Point":
        ox, oy = other
        return Point(self.x - ox, self.y - oy)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __mul__(self, scale: int) -> "Point":  # type: ignore[override]
        return Point(self.x * scale, self.y * scale)

    __rmul__ = __mul__  # type: ignore[assignment]

    def cross(self, other: "Point | Coord") -> int:
        """Z component of the 2D cross product ``self x other``."""
        ox, oy = other
        return self.x * oy - self.y * ox

    def dot(self, other: "Point | Coord") -> int:
        """Dot product with another point/vector."""
        ox, oy = other
        return self.x * ox + self.y * oy

    def manhattan(self, other: "Point | Coord" = (0, 0)) -> int:
        """Manhattan (L1) distance to ``other`` (default: the origin)."""
        ox, oy = other
        return abs(self.x - ox) + abs(self.y - oy)

    def rotated90(self, quarter_turns: int = 1) -> "Point":
        """Rotate counter-clockwise about the origin by 90-degree steps."""
        x, y = self.x, self.y
        for _ in range(quarter_turns % 4):
            x, y = -y, x
        return Point(x, y)


def as_coord(point: "Point | Coord") -> Coord:
    """Normalise a point-like value to a plain ``(x, y)`` integer tuple."""
    x, y = point
    return (int(x), int(y))


def iter_coords(points: Sequence["Point | Coord"]) -> Iterator[Coord]:
    """Yield every point of a sequence as a plain integer tuple."""
    for point in points:
        yield as_coord(point)
