"""Rectilinear polygons on the integer grid.

A :class:`Polygon` is a single closed loop of integer vertices.  Loops are
stored without a repeated closing vertex.  Outer boundaries are counter-
clockwise (positive signed area); holes -- which only appear inside a
:class:`~repro.geometry.region.Region` -- are clockwise.

The geometry kernel is restricted to *rectilinear* (Manhattan) polygons:
every edge is horizontal or vertical.  This matches the mask-layout domain
(GDSII layouts for 2001-era processes are overwhelmingly Manhattan) and is
what makes exact integer booleans and sizing tractable.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..errors import GeometryError
from .point import Coord, as_coord
from .rect import Rect

Edge = Tuple[Coord, Coord]


class Polygon:
    """A single closed rectilinear loop of integer vertices."""

    __slots__ = ("_points",)

    def __init__(self, points: Sequence[Coord], validate: bool = True):
        pts = [as_coord(p) for p in points]
        if pts and pts[0] == pts[-1]:
            pts = pts[:-1]
        if validate and len(pts) >= 3:
            _check_rectilinear(pts)
        self._points: List[Coord] = _strip_degenerate(pts)

    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        """A counter-clockwise loop covering ``rect``."""
        return cls(
            [
                (rect.x1, rect.y1),
                (rect.x2, rect.y1),
                (rect.x2, rect.y2),
                (rect.x1, rect.y2),
            ],
            validate=False,
        )

    @property
    def points(self) -> List[Coord]:
        """The vertex list (a copy; mutating it does not affect the polygon)."""
        return list(self._points)

    @property
    def num_points(self) -> int:
        """Number of vertices in the loop."""
        return len(self._points)

    @property
    def is_empty(self) -> bool:
        """True when the loop has fewer than 4 vertices (no enclosed area)."""
        return len(self._points) < 4

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Coord]:
        return iter(self._points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return _canonical_rotation(self._points) == _canonical_rotation(other._points)

    def __hash__(self) -> int:
        return hash(tuple(_canonical_rotation(self._points)))

    def __repr__(self) -> str:
        return f"Polygon({self._points!r})"

    def signed_area2(self) -> int:
        """Twice the signed area (positive for counter-clockwise loops).

        Doubling keeps the value an exact integer for any lattice polygon.
        """
        pts = self._points
        total = 0
        for i, (x1, y1) in enumerate(pts):
            x2, y2 = pts[(i + 1) % len(pts)]
            total += x1 * y2 - x2 * y1
        return total

    @property
    def area(self) -> float:
        """Unsigned enclosed area in dbu^2."""
        return abs(self.signed_area2()) / 2.0

    @property
    def is_ccw(self) -> bool:
        """True for counter-clockwise (outer-boundary) orientation."""
        return self.signed_area2() > 0

    @property
    def perimeter(self) -> int:
        """Total Manhattan boundary length."""
        pts = self._points
        total = 0
        for i, (x1, y1) in enumerate(pts):
            x2, y2 = pts[(i + 1) % len(pts)]
            total += abs(x2 - x1) + abs(y2 - y1)
        return total

    def bbox(self) -> Rect:
        """Tightest axis-aligned bounding rect."""
        if not self._points:
            raise GeometryError("empty polygon has no bounding box")
        xs = [p[0] for p in self._points]
        ys = [p[1] for p in self._points]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def edges(self) -> Iterator[Edge]:
        """Yield each directed boundary edge ``(start, end)``."""
        pts = self._points
        for i, start in enumerate(pts):
            yield start, pts[(i + 1) % len(pts)]

    def reversed(self) -> "Polygon":
        """The same loop with opposite orientation."""
        return Polygon(list(reversed(self._points)), validate=False)

    def translated(self, delta: Coord) -> "Polygon":
        """The loop moved by ``delta``."""
        dx, dy = delta
        return Polygon([(x + dx, y + dy) for x, y in self._points], validate=False)

    def scaled(self, factor: int) -> "Polygon":
        """The loop magnified about the origin by an integer factor."""
        return Polygon(
            [(x * factor, y * factor) for x, y in self._points], validate=False
        )

    def contains_point(self, point: Coord) -> bool:
        """Nonzero-winding interior test (boundary counts as inside)."""
        px, py = point
        winding = 0
        for (x1, y1), (x2, y2) in self.edges():
            if x1 == x2:  # vertical edge
                ylo, yhi = (y1, y2) if y1 < y2 else (y2, y1)
                if x1 == px and ylo <= py <= yhi:
                    return True  # on boundary
                if x1 < px and ylo <= py < yhi:
                    winding += 1 if y2 < y1 else -1
            else:  # horizontal edge
                xlo, xhi = (x1, x2) if x1 < x2 else (x2, x1)
                if y1 == py and xlo <= px <= xhi:
                    return True  # on boundary
        return winding != 0

    def is_rectangle(self) -> bool:
        """True when the loop is exactly an axis-aligned rectangle."""
        return len(self._points) == 4 and not self.is_empty

    def to_rect(self) -> Rect:
        """Convert a rectangular loop to a :class:`Rect`.

        Raises :class:`GeometryError` when the loop is not a rectangle.
        """
        if not self.is_rectangle():
            raise GeometryError(f"polygon with {len(self)} vertices is not a rect")
        return self.bbox()


def _strip_degenerate(points: List[Coord]) -> List[Coord]:
    """Drop duplicate and collinear vertices, preserving loop shape."""
    # Remove consecutive duplicates first.
    deduped: List[Coord] = []
    for pt in points:
        if not deduped or deduped[-1] != pt:
            deduped.append(pt)
    if len(deduped) > 1 and deduped[0] == deduped[-1]:
        deduped.pop()
    if len(deduped) < 3:
        return deduped
    # Remove collinear vertices (repeat until stable: removing one vertex can
    # make its neighbours collinear).
    changed = True
    while changed and len(deduped) >= 3:
        changed = False
        result: List[Coord] = []
        n = len(deduped)
        for i in range(n):
            prev = deduped[i - 1]
            cur = deduped[i]
            nxt = deduped[(i + 1) % n]
            ax, ay = cur[0] - prev[0], cur[1] - prev[1]
            bx, by = nxt[0] - cur[0], nxt[1] - cur[1]
            if ax * by - ay * bx == 0 and (ax or ay or bx or by):
                changed = True
                continue
            result.append(cur)
        deduped = result
    return deduped if len(deduped) >= 4 else []


def _check_rectilinear(points: Sequence[Coord]) -> None:
    """Raise :class:`GeometryError` unless every edge is axis-parallel."""
    n = len(points)
    for i, (x1, y1) in enumerate(points):
        x2, y2 = points[(i + 1) % n]
        if x1 != x2 and y1 != y2:
            raise GeometryError(
                f"non-rectilinear edge ({x1},{y1})->({x2},{y2}); "
                "only Manhattan polygons are supported"
            )


def _canonical_rotation(points: Sequence[Coord]) -> List[Coord]:
    """Rotate a vertex list so it starts at its lexicographically-least point."""
    if not points:
        return []
    start = min(range(len(points)), key=lambda i: points[i])
    return list(points[start:]) + list(points[:start])
