"""Reconstruction of maximal polygons from disjoint rectangle sets.

The boolean sweep emits slab rectangles; this module cancels the internal
edges shared between adjacent slabs and stitches the surviving boundary
segments back into closed loops.  Because every edge is built with the
region interior on its left, outer loops emerge counter-clockwise and holes
clockwise without any post-hoc orientation fixing.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import GeometryError
from .point import Coord
from .polygon import _strip_degenerate
from .rect import Rect

_DirectedEdge = Tuple[Coord, Coord]

#: Turn preference at a multi-valent vertex, highest first: left, straight,
#: right, U-turn.  Taking the leftmost available turn keeps each traversed
#: loop simple when two loops touch at a single corner point.
_TURN_RANK = {1: 0, 0: 1, -1: 2, -2: 3}


def stitch_rects(rects: Sequence[Rect]) -> List[List[Coord]]:
    """Merge a disjoint rectangle set into maximal oriented loops.

    Rectangles must be interior-disjoint (they may share boundary), as
    produced by :func:`repro.geometry.booleans.sweep_rects`.  Returns vertex
    loops with collinear points removed; outer loops are counter-clockwise,
    holes clockwise.
    """
    edges = _boundary_edges(rects)
    if not edges:
        return []
    return _walk_loops(edges)


def _boundary_edges(rects: Sequence[Rect]) -> List[_DirectedEdge]:
    """Boundary segments of the union, oriented with the interior on the left.

    Vertical sides of slab-adjacent rects overlap with opposite direction and
    cancel; horizontal sides of disjoint slabs never overlap and are kept
    as-is.
    """
    edges: List[_DirectedEdge] = []
    # Vertical side cancellation: at each x, +1 coverage for right sides
    # (pointing up) and -1 for left sides (pointing down).
    vertical: Dict[int, List[Tuple[int, int]]] = {}
    for r in rects:
        if r.is_empty:
            continue
        vertical.setdefault(r.x2, []).extend([(r.y1, 1), (r.y2, -1)])
        vertical.setdefault(r.x1, []).extend([(r.y1, -1), (r.y2, 1)])
        edges.append(((r.x1, r.y1), (r.x2, r.y1)))  # bottom, interior above
        edges.append(((r.x2, r.y2), (r.x1, r.y2)))  # top, interior below
    for x, deltas in vertical.items():
        deltas.sort()
        level = 0
        run_start = 0
        for y, d in deltas:
            new_level = level + d
            if level == 0 and new_level != 0:
                run_start = y
            elif level != 0 and (new_level == 0 or (level > 0) != (new_level > 0)):
                _append_vertical(edges, x, run_start, y, level)
                run_start = y
            level = new_level
        if level != 0:  # pragma: no cover - disjointness violated upstream
            raise GeometryError(f"unbalanced vertical boundary at x={x}")
    return edges


def _append_vertical(
    edges: List[_DirectedEdge], x: int, y1: int, y2: int, level: int
) -> None:
    """Append a net vertical boundary segment (skip zero-length runs)."""
    if y1 == y2:
        return
    if level > 0:  # net right side: interior to the left when pointing up
        edges.append(((x, y1), (x, y2)))
    else:  # net left side: interior to the left when pointing down
        edges.append(((x, y2), (x, y1)))


def _walk_loops(edges: List[_DirectedEdge]) -> List[List[Coord]]:
    """Chain directed edges into closed loops, leftmost-turn at junctions."""
    out_map: Dict[Coord, List[int]] = {}
    for idx, (start, _end) in enumerate(edges):
        out_map.setdefault(start, []).append(idx)

    used = [False] * len(edges)
    loops: List[List[Coord]] = []
    for seed in range(len(edges)):
        if used[seed]:
            continue
        loop: List[Coord] = []
        idx = seed
        while not used[idx]:
            used[idx] = True
            start, end = edges[idx]
            loop.append(start)
            candidates = [j for j in out_map.get(end, ()) if not used[j]]
            if not candidates:
                if end != edges[seed][0]:  # pragma: no cover - broken input
                    raise GeometryError(f"open boundary chain at {end}")
                break
            idx = _pick_leftmost(edges, start, end, candidates)
        simplified = _strip_degenerate(loop)
        if simplified:
            loops.append(simplified)
    return loops


def _pick_leftmost(
    edges: List[_DirectedEdge], start: Coord, end: Coord, candidates: List[int]
) -> int:
    """Choose the outgoing edge making the leftmost turn from ``start->end``."""
    if len(candidates) == 1:
        return candidates[0]
    din = (_sign(end[0] - start[0]), _sign(end[1] - start[1]))

    def rank(j: int) -> int:
        _s, e = edges[j]
        dout = (_sign(e[0] - end[0]), _sign(e[1] - end[1]))
        cross = din[0] * dout[1] - din[1] * dout[0]
        if cross != 0:
            return _TURN_RANK[cross]
        dot = din[0] * dout[0] + din[1] * dout[1]
        return _TURN_RANK[0] if dot > 0 else _TURN_RANK[-2]

    return min(candidates, key=rank)


def _sign(v: int) -> int:
    if v > 0:
        return 1
    if v < 0:
        return -1
    return 0
